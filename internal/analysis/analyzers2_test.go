package analysis

import (
	"strings"
	"testing"
)

// checkDiags asserts the exact rendered findings for one fixture run.
func checkDiags(t *testing.T, m *Module, diags []Diagnostic, want []string) {
	t.Helper()
	got := render(t, m, diags)
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\ngot:  %s\nwant: %s",
			len(got), len(want),
			strings.Join(got, "\n      "), strings.Join(want, "\n      "))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("finding %d:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

func TestResetCompleteFindings(t *testing.T) {
	m := loadTestModule(t, "resetbad")
	diags := Run(m, []Analyzer{ResetComplete{}})
	checkDiags(t, m, diags, []string{
		"pool/pool.go:9: [resetcomplete] field Buf.dirty is not reassigned by Reset (stale state survives recycling; reset it or mark the field //storemlp:keep)",
	})
}

func TestResetCompleteConfiguredMethod(t *testing.T) {
	// With Reconfigure declared a reset-equivalent of a type that has no
	// such method, nothing changes; pointing it at Ring.zeroPos (which
	// only covers pos) must surface Ring's other fields.
	m := loadTestModule(t, "resetbad")
	diags := Run(m, []Analyzer{ResetComplete{Methods: map[string]string{
		"example.com/resetbad/pool.Ring": "zeroPos",
	}}})
	var rules []string
	for _, d := range diags {
		if strings.Contains(d.Message, "zeroPos") {
			rules = append(rules, d.Message)
		}
	}
	if len(rules) != 3 { // buf, stats, sub are not covered by zeroPos
		t.Errorf("want 3 zeroPos findings (buf, stats, sub), got %d:\n%s",
			len(rules), strings.Join(render(t, m, diags), "\n"))
	}
}

func TestGuardedByFindings(t *testing.T) {
	m := loadTestModule(t, "guardedbad")
	diags := Run(m, []Analyzer{GuardedBy{}})
	checkDiags(t, m, diags, []string{
		"flowq/flowq.go:22: [guardedby] field S.n accessed without holding s.mu (lock it, or annotate the function //storemlp:locked)",
		"flowq/flowq.go:35: [guardedby] field S.n accessed without holding s.mu (lock it, or annotate the function //storemlp:locked)",
		"queue/queue.go:33: [guardedby] field Q.items accessed without holding q.mu (lock it, or annotate the function //storemlp:locked)",
		"queue/queue.go:40: [guardedby] field Q.hits accessed without holding q.mu (lock it, or annotate the function //storemlp:locked)",
	})
}

// TestGuardedByLexicalBaseline pins what the pre-CFG walker misses:
// the flowq bugs (branch release leaking past the join, loop back-edge
// release) are invisible lexically, while the straight-line queue
// findings are shared by both modes.
func TestGuardedByLexicalBaseline(t *testing.T) {
	m := loadTestModule(t, "guardedbad")
	diags := Run(m, []Analyzer{GuardedBy{Lexical: true}})
	checkDiags(t, m, diags, []string{
		"queue/queue.go:33: [guardedby] field Q.items accessed without holding q.mu (lock it, or annotate the function //storemlp:locked)",
		"queue/queue.go:40: [guardedby] field Q.hits accessed without holding q.mu (lock it, or annotate the function //storemlp:locked)",
	})
}

func TestHotPathFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("hotpath shells out to go build")
	}
	m := loadTestModule(t, "hotpathbad")
	diags := Run(m, []Analyzer{HotPath{}})
	checkDiags(t, m, diags, []string{
		"hot/hot.go:14: [hotpath] //storemlp:noalloc function Leaky allocates: new(int) escapes to heap",
		"hot/hot.go:20: [hotpath] //storemlp:inline function Spin does not inline: recursive",
	})
}

func TestCtxPollFindings(t *testing.T) {
	m := loadTestModule(t, "ctxpollbad")
	diags := Run(m, []Analyzer{CtxPoll{TracePkg: "example.com/ctxpollbad/trace"}})
	checkDiags(t, m, diags, []string{
		"run/run.go:30: [ctxpoll] loop consumes trace batches without polling ctx (check ctx.Err() every batch so cancellation lands within the 8192-inst bound)",
		"run/run.go:44: [ctxpoll] loop consumes trace batches without polling ctx (check ctx.Err() every batch so cancellation lands within the 8192-inst bound)",
	})
}

// TestCtxPollLexicalBaseline pins the blind spot of the pre-CFG check:
// RarePoll's debug-branch poll satisfies "a poll somewhere in the
// body", so only the poll-free Bad loop is caught.
func TestCtxPollLexicalBaseline(t *testing.T) {
	m := loadTestModule(t, "ctxpollbad")
	diags := Run(m, []Analyzer{CtxPoll{TracePkg: "example.com/ctxpollbad/trace", Lexical: true}})
	checkDiags(t, m, diags, []string{
		"run/run.go:30: [ctxpoll] loop consumes trace batches without polling ctx (check ctx.Err() every batch so cancellation lands within the 8192-inst bound)",
	})
}

// TestNewAnalyzersCleanOnGood pins the false-positive side: the PR 1
// good module has Reset-less types, no guarded fields, no hot-path
// annotations and no trace package, so all four new rules are silent.
func TestNewAnalyzersCleanOnGood(t *testing.T) {
	m := loadTestModule(t, "good")
	diags := Run(m, []Analyzer{
		ResetComplete{},
		GuardedBy{},
		CtxPoll{TracePkg: "example.com/good/trace"},
	})
	if len(diags) != 0 {
		t.Errorf("good module should be clean, got:\n%s",
			strings.Join(render(t, m, diags), "\n"))
	}
}
