package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveEnum checks that every switch over a declared enum type
// covers all of its enumerators or carries a default clause.
//
// Enum types are discovered generically: a named type whose underlying
// type is an integer, with at least two package-level constants of that
// exact type whose values form a contiguous range starting at zero
// (iota-style const blocks). Bitmask types (1 << iota) are therefore
// never treated as enums. A trailing sentinel counter — the maximum
// value, named like NumX / numX / MaxX / EndX — is excluded from the
// required coverage set, since it is a count, not a state.
type ExhaustiveEnum struct{}

// Name implements Analyzer.
func (ExhaustiveEnum) Name() string { return "exhaustive-enum" }

// Doc implements Analyzer.
func (ExhaustiveEnum) Doc() string {
	return "switches over enum types must cover every enumerator or have a default"
}

// enumerator is one constant of an enum type.
type enumerator struct {
	name string
	val  int64
}

// enumSet is the discovered enumerator set of one enum type.
type enumSet struct {
	named *types.Named
	enums []enumerator // sentinel excluded, sorted by value
}

// Run implements Analyzer.
func (a ExhaustiveEnum) Run(m *Module) []Diagnostic {
	enums := discoverEnums(m)
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				tv, ok := pkg.Info.Types[sw.Tag]
				if !ok {
					return true
				}
				named := namedOf(tv.Type)
				if named == nil {
					return true
				}
				es, ok := enums[typeKey(named)]
				if !ok {
					return true
				}
				if d, bad := checkSwitch(m, pkg, sw, es); bad {
					out = append(out, d)
				}
				return true
			})
		}
	}
	return out
}

// discoverEnums scans every package for enum-shaped type + const-block
// pairs and returns them keyed by "pkgpath.TypeName".
func discoverEnums(m *Module) map[string]enumSet {
	out := map[string]enumSet{}
	for _, pkg := range m.SortedPackages() {
		byType := map[*types.Named][]enumerator{}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			cst, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			named := namedOf(cst.Type())
			if named == nil || named.Obj().Pkg() != pkg.Types || !isNumeric(named) {
				continue
			}
			v, ok := constant.Int64Val(constant.ToInt(cst.Val()))
			if !ok {
				continue
			}
			byType[named] = append(byType[named], enumerator{name: name, val: v})
		}
		for named, all := range byType {
			if es, ok := buildEnumSet(named, all); ok {
				out[typeKey(named)] = es
			}
		}
	}
	return out
}

// buildEnumSet validates that the constants look like an iota enum and
// strips the sentinel counter.
func buildEnumSet(named *types.Named, all []enumerator) (enumSet, bool) {
	sort.Slice(all, func(i, j int) bool {
		if all[i].val != all[j].val {
			return all[i].val < all[j].val
		}
		return all[i].name < all[j].name
	})
	// Strip a trailing sentinel: the unique maximum value with a
	// counter-style name.
	if n := len(all); n >= 2 {
		last := all[n-1]
		if last.val != all[n-2].val && isSentinelName(last.name) {
			all = all[:n-1]
		}
	}
	// Contiguity from zero; duplicate values (aliases) collapse.
	seen := map[int64]bool{}
	var vals []int64
	for _, e := range all {
		if !seen[e.val] {
			seen[e.val] = true
			vals = append(vals, e.val)
		}
	}
	if len(vals) < 2 || vals[0] != 0 || vals[len(vals)-1] != int64(len(vals)-1) {
		return enumSet{}, false
	}
	// Keep one representative name per value.
	dedup := make([]enumerator, 0, len(vals))
	used := map[int64]bool{}
	for _, e := range all {
		if !used[e.val] {
			used[e.val] = true
			dedup = append(dedup, e)
		}
	}
	return enumSet{named: named, enums: dedup}, true
}

func isSentinelName(name string) bool {
	lower := strings.ToLower(name)
	for _, prefix := range []string{"num", "max", "end", "sentinel"} {
		if strings.HasPrefix(lower, prefix) {
			return true
		}
	}
	return false
}

// checkSwitch reports whether the switch misses enumerators without a
// default clause.
func checkSwitch(m *Module, pkg *Package, sw *ast.SwitchStmt, es enumSet) (Diagnostic, bool) {
	covered := map[int64]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return Diagnostic{}, false // default clause present
		}
		for _, e := range cc.List {
			tv, ok := pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				// Non-constant case expression: coverage is undecidable,
				// treat the switch as intentionally open-ended.
				return Diagnostic{}, false
			}
			if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
				covered[v] = true
			}
		}
	}
	var missing []string
	for _, e := range es.enums {
		if !covered[e.val] {
			missing = append(missing, e.name)
		}
	}
	if len(missing) == 0 {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos:  m.Fset.Position(sw.Pos()),
		Rule: "exhaustive-enum",
		Message: fmt.Sprintf("switch over %s misses %s (add the cases or a default clause)",
			typeKey(es.named), strings.Join(missing, ", ")),
	}, true
}
