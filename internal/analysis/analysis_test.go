package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadTestModule loads one of the testdata mini-modules. Loading
// type-checks stdlib imports from GOROOT source, so modules are cached
// per test binary run via this map.
var moduleCache = map[string]*Module{}

func loadTestModule(t *testing.T, name string) *Module {
	t.Helper()
	if m := moduleCache[name]; m != nil {
		return m
	}
	m, err := Load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	moduleCache[name] = m
	return m
}

// analyzersFor mirrors DefaultAnalyzers with the repo-specific paths
// rebound to the given testdata module.
func analyzersFor(mod string) []Analyzer {
	return []Analyzer{
		ExhaustiveEnum{},
		ValidateCoverage{},
		StatsDrift{
			StructPkg:   "example.com/" + mod + "/stats",
			StructName:  "Stats",
			MergeMethod: "Merge",
			ConsumerPkg: "example.com/" + mod + "/consumer",
		},
		FloatCmp{},
		CtxMut{Protected: []string{"example.com/" + mod + "/config.Config"}},
	}
}

// render formats diagnostics with filenames relative to the module
// root, matching the CLI's output.
func render(t *testing.T, m *Module, diags []Diagnostic) []string {
	t.Helper()
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		rel, err := filepath.Rel(m.Dir, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		d.Pos.Filename = filepath.ToSlash(rel)
		out = append(out, d.String())
	}
	return out
}

func TestGoodModuleIsClean(t *testing.T) {
	m := loadTestModule(t, "good")
	diags := Run(m, analyzersFor("good"))
	if len(diags) != 0 {
		t.Errorf("good module should be clean, got:\n%s",
			strings.Join(render(t, m, diags), "\n"))
	}
}

func TestBadModuleFindings(t *testing.T) {
	m := loadTestModule(t, "bad")
	all := Run(m, analyzersFor("bad"))

	tests := []struct {
		rule string
		want []string
	}{
		{"exhaustive-enum", []string{
			"enums/enums.go:15: [exhaustive-enum] switch over example.com/bad/enums.Mode misses Fast (add the cases or a default clause)",
		}},
		{"validate-coverage", []string{
			"config/config.go:11: [validate-coverage] field Config.Rate is not checked by Validate (add a check or a // storemlpvet:novalidate comment)",
		}},
		{"stats-drift", []string{
			"stats/stats.go:7: [stats-drift] numeric field Stats.NotMerged is not folded by Merge",
			"stats/stats.go:8: [stats-drift] numeric field Stats.Dead is never read by example.com/bad/consumer (dead counter or missing metric)",
		}},
		{"floatcmp", []string{
			"floats/floats.go:5: [floatcmp] floating-point == comparison (use a sign test or an epsilon)",
			"floats/floats.go:8: [floatcmp] floating-point != comparison (use a sign test or an epsilon)",
		}},
		{"ctxmut", []string{
			"ctx/ctx.go:8: [ctxmut] assignment through *example.com/bad/config.Config outside its package (copy the value instead)",
			"ctx/ctx.go:9: [ctxmut] mutation through *example.com/bad/config.Config outside its package (copy the value instead)",
		}},
	}

	total := 0
	for _, tt := range tests {
		t.Run(tt.rule, func(t *testing.T) {
			var got []string
			for i, d := range all {
				if d.Rule == tt.rule {
					got = append(got, render(t, m, all[i:i+1])...)
				}
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %d findings, want %d:\ngot:  %s\nwant: %s",
					len(got), len(tt.want),
					strings.Join(got, "\n      "), strings.Join(tt.want, "\n      "))
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("finding %d:\ngot:  %s\nwant: %s", i, got[i], tt.want[i])
				}
			}
		})
		total += len(tt.want)
	}
	if len(all) != total {
		t.Errorf("total findings = %d, want %d:\n%s",
			len(all), total, strings.Join(render(t, m, all), "\n"))
	}
}

func TestStatsDriftMissingMerge(t *testing.T) {
	m := loadTestModule(t, "good")
	diags := StatsDrift{
		StructPkg:   "example.com/good/stats",
		StructName:  "Stats",
		MergeMethod: "Fold",
		ConsumerPkg: "example.com/good/consumer",
	}.Run(m)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "has no Fold method") {
		t.Errorf("want single missing-merge diagnostic, got %+v", diags)
	}
}

func TestEnumDiscovery(t *testing.T) {
	m := loadTestModule(t, "good")
	enums := discoverEnums(m)
	es, ok := enums["example.com/good/enums.Color"]
	if !ok {
		t.Fatal("Color not discovered as an enum")
	}
	var names []string
	for _, e := range es.enums {
		names = append(names, e.name)
	}
	if got := strings.Join(names, ","); got != "Red,Green,Blue" {
		t.Errorf("Color enumerators = %s, want Red,Green,Blue (sentinel stripped)", got)
	}
	if _, ok := enums["example.com/good/enums.Flags"]; ok {
		t.Error("bitmask Flags wrongly discovered as an enum")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "floatcmp", Message: "msg"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 7
	if got, want := d.String(), "a/b.go:7: [floatcmp] msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
