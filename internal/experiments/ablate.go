package experiments

import (
	"storemlp/internal/sim"
	"storemlp/internal/uarch"
)

// The ablations quantify design choices the paper discusses in prose:
// store coalescing granularity (§5.1), the L2 bandwidth cost of store
// prefetching that motivates the SMAC (§3.3.3), the SMAC sub-blocking
// geometry, the scout reach behind Hardware Scout's effectiveness
// (§3.3.5), SLE vs transactional memory (§3.3.4), and shared-L2 CMP
// interference (§4.3's two-cores-per-L2 configuration).

// AblationResults bundles every ablation sweep.
type AblationResults struct {
	Coalescing   []CoalescingCell
	Bandwidth    []BandwidthCell
	ScoutReach   []ScoutReachCell
	LockElision  []LockElisionCell
	SharedL2     []SharedL2Cell
	SMACGeometry []SMACGeometryCell
}

// RunAblations executes every ablation sweep.
func RunAblations(c Config) (*AblationResults, error) {
	var r AblationResults
	var err error
	if r.Coalescing, err = AblationCoalescing(c); err != nil {
		return nil, err
	}
	if r.Bandwidth, err = AblationBandwidth(c); err != nil {
		return nil, err
	}
	if r.ScoutReach, err = AblationScoutReach(c); err != nil {
		return nil, err
	}
	if r.LockElision, err = AblationLockElision(c); err != nil {
		return nil, err
	}
	if r.SharedL2, err = AblationSharedL2(c); err != nil {
		return nil, err
	}
	if r.SMACGeometry, err = AblationSMACGeometry(c); err != nil {
		return nil, err
	}
	return &r, nil
}

// CoalescingCell is one point of the store-coalescing ablation.
type CoalescingCell struct {
	Workload      string
	CoalesceBytes int // 0 = off
	SQ            int
	EPI           float64
}

// AblationCoalescing sweeps coalescing granularity {off, 8 B, 64 B}
// against store queue sizes, reproducing the paper's observation that
// 64-byte coalescing lets a 32-entry store queue match a 64-entry one.
func AblationCoalescing(c Config) ([]CoalescingCell, error) {
	c = c.norm()
	var cells []CoalescingCell
	for _, w := range c.Workloads {
		for _, gran := range []int{0, 8, 64} {
			for _, sq := range []int{16, 32, 64} {
				cells = append(cells, CoalescingCell{Workload: w.Name, CoalesceBytes: gran, SQ: sq})
			}
		}
	}
	byName := workloadIndex(c.Workloads)
	err := parMap(c.ctx(), len(cells), c.Parallelism, func(i int) error {
		cell := &cells[i]
		cfg := uarch.Default()
		cfg.CoalesceBytes = cell.CoalesceBytes
		cfg.StoreQueue = cell.SQ
		s, err := c.run(sim.Spec{Workload: byName[cell.Workload], Uarch: cfg, Insts: c.Insts, Warm: c.Warm})
		if err != nil {
			return err
		}
		cell.EPI = s.EPI()
		return nil
	})
	return cells, err
}

// BandwidthCell reports L2 traffic per 1000 instructions for a store
// handling scheme: demand store commits plus prefetch/ownership
// requests. The SMAC's purpose is reaching prefetch-level EPI without
// the prefetch traffic.
type BandwidthCell struct {
	Workload        string
	Scheme          string // "Sp0", "Sp1", "Sp2", "Sp0+SMAC"
	EPI             float64
	StoreTraffic    float64 // store commits reaching L2, per 1000 insts
	PrefetchReqs    float64 // prefetch-for-write requests, per 1000 insts
	SMACAccelerated float64
}

// AblationBandwidth compares the L2 bandwidth cost of store prefetching
// against the SMAC.
func AblationBandwidth(c Config) ([]BandwidthCell, error) {
	c = c.norm()
	insts, warm := smacRunLength(c)
	schemes := []string{"Sp0", "Sp1", "Sp2", "Sp0+SMAC"}
	var cells []BandwidthCell
	for _, w := range c.Workloads {
		for _, s := range schemes {
			cells = append(cells, BandwidthCell{Workload: w.Name, Scheme: s})
		}
	}
	byName := workloadIndex(c.Workloads)
	err := parMap(c.ctx(), len(cells), c.Parallelism, func(i int) error {
		cell := &cells[i]
		cfg := uarch.Default()
		switch cell.Scheme {
		case "Sp0":
			cfg.StorePrefetch = uarch.Sp0
		case "Sp1":
			cfg.StorePrefetch = uarch.Sp1
		case "Sp2":
			cfg.StorePrefetch = uarch.Sp2
		case "Sp0+SMAC":
			cfg.StorePrefetch = uarch.Sp0
			cfg.SMACEntries = 4 << 10
		}
		w := smacScale(byName[cell.Workload])
		s, err := c.run(sim.Spec{Workload: w, Uarch: cfg, Insts: insts, Warm: warm})
		if err != nil {
			return err
		}
		per1000 := func(n int64) float64 { return 1000 * float64(n) / float64(s.Insts) }
		cell.EPI = s.EPI()
		cell.StoreTraffic = per1000(s.Hierarchy.L2StoreTraffic)
		cell.PrefetchReqs = per1000(s.Hierarchy.L2PrefetchReqs)
		cell.SMACAccelerated = per1000(s.SMACAccelerated)
		return nil
	})
	return cells, err
}

// SharedL2Cell is one point of the CMP-interference ablation: the
// paper's default configuration has two cores sharing the L2; this
// quantifies what the co-runner's cache pressure costs.
type SharedL2Cell struct {
	Workload string
	CoRun    bool
	EPI      float64
}

// AblationSharedL2 compares solo execution against co-scheduled
// execution with a second copy of the workload sharing the L2.
func AblationSharedL2(c Config) ([]SharedL2Cell, error) {
	c = c.norm()
	var cells []SharedL2Cell
	for _, w := range c.Workloads {
		cells = append(cells,
			SharedL2Cell{Workload: w.Name, CoRun: false},
			SharedL2Cell{Workload: w.Name, CoRun: true})
	}
	byName := workloadIndex(c.Workloads)
	err := parMap(c.ctx(), len(cells), c.Parallelism, func(i int) error {
		cell := &cells[i]
		s, err := c.run(sim.Spec{
			Workload: byName[cell.Workload], Uarch: uarch.Default(),
			Insts: c.Insts, Warm: c.Warm, SharedCore: cell.CoRun,
		})
		if err != nil {
			return err
		}
		cell.EPI = s.EPI()
		return nil
	})
	return cells, err
}

// SMACGeometryCell is one point of the SMAC sub-blocking design-space
// ablation (§3.3.3 motivates the 2048 B / 32-sub-block choice as a tag
// amortization).
type SMACGeometryCell struct {
	Workload       string
	SuperLineBytes int
	EPI            float64
	Accelerated    int64
	CoveragePerTag int64
}

// AblationSMACGeometry sweeps the super-line size at a fixed entry
// count and 64 B sub-blocks: small super-lines waste tags, huge ones
// waste reach when store footprints are sparse.
func AblationSMACGeometry(c Config) ([]SMACGeometryCell, error) {
	c = c.norm()
	insts, warm := smacRunLength(c)
	superLines := []int{256, 1024, 2048, 4096}
	var cells []SMACGeometryCell
	for _, w := range c.Workloads {
		for _, sl := range superLines {
			cells = append(cells, SMACGeometryCell{Workload: w.Name, SuperLineBytes: sl})
		}
	}
	byName := workloadIndex(c.Workloads)
	err := parMap(c.ctx(), len(cells), c.Parallelism, func(i int) error {
		cell := &cells[i]
		cfg := uarch.Default()
		cfg.StorePrefetch = uarch.Sp0
		cfg.SMACEntries = 1 << 10
		cfg.SMACSuperLineBytes = cell.SuperLineBytes
		w := smacScale(byName[cell.Workload])
		s, err := c.run(sim.Spec{Workload: w, Uarch: cfg, Insts: insts, Warm: warm})
		if err != nil {
			return err
		}
		cell.EPI = s.EPI()
		cell.Accelerated = s.SMACAccelerated
		cell.CoveragePerTag = int64(cell.SuperLineBytes)
		return nil
	})
	return cells, err
}

// LockElisionCell is one point of the SLE-vs-TM comparison (§3.3.4:
// "transactional memory achieves similar benefits as SLE").
type LockElisionCell struct {
	Workload string
	Scheme   string // "base", "SLE", "TM"
	EPI      float64
}

// AblationLockElision compares the two lock-removal techniques under
// processor consistency.
func AblationLockElision(c Config) ([]LockElisionCell, error) {
	c = c.norm()
	schemes := []string{"base", "SLE", "TM"}
	var cells []LockElisionCell
	for _, w := range c.Workloads {
		for _, s := range schemes {
			cells = append(cells, LockElisionCell{Workload: w.Name, Scheme: s})
		}
	}
	byName := workloadIndex(c.Workloads)
	err := parMap(c.ctx(), len(cells), c.Parallelism, func(i int) error {
		cell := &cells[i]
		cfg := uarch.Default()
		switch cell.Scheme {
		case "SLE":
			cfg.SLE = true
		case "TM":
			cfg.TM = true
		}
		s, err := c.run(sim.Spec{Workload: byName[cell.Workload], Uarch: cfg, Insts: c.Insts, Warm: c.Warm})
		if err != nil {
			return err
		}
		cell.EPI = s.EPI()
		return nil
	})
	return cells, err
}

// ScoutReachCell is one point of the scout-reach ablation.
type ScoutReachCell struct {
	Workload string
	Reach    int
	EPI      float64
}

// AblationScoutReach sweeps how far Hardware Scout (HWS2) runs ahead,
// in instructions; the paper's implicit reach is one miss latency of
// execution (~454 instructions at 500 cycles / 1.1 CPI).
func AblationScoutReach(c Config) ([]ScoutReachCell, error) {
	c = c.norm()
	reaches := []int{64, 128, 256, 454, 1024}
	var cells []ScoutReachCell
	for _, w := range c.Workloads {
		for _, r := range reaches {
			cells = append(cells, ScoutReachCell{Workload: w.Name, Reach: r})
		}
	}
	byName := workloadIndex(c.Workloads)
	err := parMap(c.ctx(), len(cells), c.Parallelism, func(i int) error {
		cell := &cells[i]
		cfg := uarch.Default()
		cfg.HWS = uarch.HWS2
		cfg.ScoutReach = cell.Reach
		s, err := c.run(sim.Spec{Workload: byName[cell.Workload], Uarch: cfg, Insts: c.Insts, Warm: c.Warm})
		if err != nil {
			return err
		}
		cell.EPI = s.EPI()
		return nil
	})
	return cells, err
}
