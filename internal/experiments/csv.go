package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
)

// ToCSV converts a slice of flat result structs (the row/cell types in
// this package) into CSV records with a header row. Exported fields of
// basic kinds become columns; fixed-size arrays of numbers are flattened
// into indexed columns; anything else (e.g. 2-D distribution arrays) is
// skipped.
func ToCSV(rows interface{}) ([][]string, error) {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return nil, fmt.Errorf("experiments: ToCSV wants a slice, got %T", rows)
	}
	elem := v.Type().Elem()
	if elem.Kind() != reflect.Struct {
		return nil, fmt.Errorf("experiments: ToCSV wants a slice of structs, got %T", rows)
	}

	type column struct {
		field int
		index int // -1 for scalar fields, array index otherwise
		name  string
	}
	var cols []column
	for f := 0; f < elem.NumField(); f++ {
		field := elem.Field(f)
		if !field.IsExported() {
			continue
		}
		switch field.Type.Kind() {
		case reflect.String, reflect.Bool,
			reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64:
			cols = append(cols, column{field: f, index: -1, name: field.Name})
		case reflect.Array:
			if k := field.Type.Elem().Kind(); k == reflect.Float64 || k == reflect.Int64 {
				for i := 0; i < field.Type.Len(); i++ {
					cols = append(cols, column{
						field: f, index: i,
						name: fmt.Sprintf("%s[%d]", field.Name, i),
					})
				}
			}
		default:
			// Stringer-friendly named types (consistency.Model,
			// uarch.PrefetchMode, ...) are integer kinds and handled
			// above via their underlying kind; true composites skipped.
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("experiments: %s has no CSV-able fields", elem.Name())
	}

	out := make([][]string, 0, v.Len()+1)
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = c.name
	}
	out = append(out, header)
	for r := 0; r < v.Len(); r++ {
		row := make([]string, len(cols))
		for i, c := range cols {
			fv := v.Index(r).Field(c.field)
			if c.index >= 0 {
				fv = fv.Index(c.index)
			}
			row[i] = formatCell(fv)
		}
		out = append(out, row)
	}
	return out, nil
}

func formatCell(v reflect.Value) string {
	// Prefer String() for named enum types (PrefetchMode, Model, ...).
	if s, ok := v.Interface().(fmt.Stringer); ok {
		return s.String()
	}
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		return fmt.Sprintf("%.6g", v.Float())
	default:
		return fmt.Sprintf("%v", v.Interface())
	}
}

// WriteCSV writes rows (as accepted by ToCSV) to w.
func WriteCSV(w io.Writer, rows interface{}) error {
	records, err := ToCSV(rows)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(records); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
