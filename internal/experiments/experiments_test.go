package experiments

import (
	"context"
	"errors"
	"math"
	"testing"

	"storemlp/internal/consistency"
	"storemlp/internal/epoch"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

// small returns a configuration fast enough for unit tests but long
// enough for directional assertions.
func small() Config {
	return Config{Seed: 1, Insts: 300_000, Warm: 200_000}
}

func TestParMap(t *testing.T) {
	out := make([]int, 100)
	if err := parMap(context.Background(), 100, 8, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	wantErr := errors.New("boom")
	if err := parMap(context.Background(), 10, 2, func(i int) error {
		if i == 5 {
			return wantErr
		}
		return nil
	}); err == nil || !errors.Is(err, wantErr) {
		t.Errorf("parMap error = %v", err)
	}
	if err := parMap(context.Background(), 3, 0, func(int) error { return nil }); err != nil {
		t.Errorf("parallelism 0 should clamp: %v", err)
	}
}

func TestParMapCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := parMap(ctx, 50, 1, func(i int) error { ran++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("launched %d fns under a cancelled context", ran)
	}
}

func TestSweepCancellation(t *testing.T) {
	// A cancelled context must abort a full-figure sweep with its error,
	// not run it to completion.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := small()
	c.Ctx = ctx
	if _, err := Table2(c); !errors.Is(err, context.Canceled) {
		t.Fatalf("Table2 under cancelled ctx: err = %v", err)
	}
}

func TestConfigNorm(t *testing.T) {
	c := Config{}.norm()
	if c.Seed != 1 || c.Insts != 2_000_000 || c.Parallelism < 1 || len(c.Workloads) != 4 {
		t.Errorf("norm = %+v", c)
	}
	d := DefaultConfig()
	if d.Insts != 2_000_000 || d.Warm != 1_000_000 {
		t.Errorf("DefaultConfig = %+v", d)
	}
}

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, row := range rows {
		w := workload.All(1)[i]
		if row.Workload != w.Name {
			t.Errorf("row %d workload %q", i, row.Workload)
		}
		if math.Abs(row.StoreFreq-w.StorePer100) > 0.15*w.StorePer100 {
			t.Errorf("%s store freq %.2f, want ~%.2f", row.Workload, row.StoreFreq, w.StorePer100)
		}
		if row.StoreMiss <= 0 || row.LoadMiss <= 0 {
			t.Errorf("%s: zero miss rates: %+v", row.Workload, row)
		}
	}
	// Database has the highest store frequency and miss rate (Table 1).
	for _, row := range rows[1:] {
		if rows[0].StoreFreq <= row.StoreFreq {
			t.Errorf("database store freq should lead: %v vs %v", rows[0], row)
		}
	}
}

func TestTable2Bounds(t *testing.T) {
	rows, err := Table2(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Overlapped < 0 || r.Overlapped > 0.5 {
			t.Errorf("%s overlapped = %.3f; paper: most stores NOT overlappable", r.Workload, r.Overlapped)
		}
	}
}

func TestTable3Band(t *testing.T) {
	rows, err := Table3(small())
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 3: 1.11, 1.12, 0.95, 1.38. Allow a band.
	want := map[string]float64{"database": 1.11, "tpcw": 1.12, "specjbb": 0.95, "specweb": 1.38}
	for _, r := range rows {
		if math.Abs(r.CPIOnChip-want[r.Workload]) > 0.25 {
			t.Errorf("%s CPIon-chip = %.2f, want ~%.2f", r.Workload, r.CPIOnChip, want[r.Workload])
		}
	}
}

func TestFigure2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	c := small()
	c.Workloads = []workload.Params{workload.TPCW(1)}
	cells, err := Figure2(c)
	if err != nil {
		t.Fatal(err)
	}
	// 3 prefetch x 3 SB x 4 SQ + 1 perfect
	if len(cells) != 37 {
		t.Fatalf("cells = %d, want 37", len(cells))
	}
	get := func(sp uarch.PrefetchMode, sb, sq int) float64 {
		for _, cell := range cells {
			if !cell.Perfect && cell.Prefetch == sp && cell.SB == sb && cell.SQ == sq {
				return cell.EPI
			}
		}
		t.Fatalf("cell %v/%d/%d missing", sp, sb, sq)
		return 0
	}
	var perfect float64
	for _, cell := range cells {
		if cell.Perfect {
			perfect = cell.EPI
		}
		if cell.EPI <= 0 {
			t.Fatalf("cell with zero EPI: %+v", cell)
		}
	}
	// Monotonicity: larger SQ never hurts; prefetching never hurts.
	if get(uarch.Sp0, 16, 256) > get(uarch.Sp0, 16, 16)*1.02 {
		t.Error("larger SQ should not increase EPI")
	}
	if get(uarch.Sp1, 16, 32) > get(uarch.Sp0, 16, 32)*1.02 {
		t.Error("Sp1 should not exceed Sp0")
	}
	if perfect > get(uarch.Sp2, 32, 256)*1.02 {
		t.Error("perfect stores should lower-bound the sweep")
	}
}

func TestFigure3StoreSerializeShift(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	c := small()
	c.Workloads = []workload.Params{workload.SPECjbb(1)}
	rows, err := Figure3(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var a, b Fig3Row
	for _, r := range rows {
		if r.Variant == "A" {
			a = r
		} else {
			b = r
		}
	}
	// Paper: store serialize dominates for SPECjbb in (A) and becomes
	// negligible under SLE+PPS in (B).
	if a.Fractions[epoch.TermStoreSerialize] < 0.3 {
		t.Errorf("A: store serialize = %.3f, want dominant", a.Fractions[epoch.TermStoreSerialize])
	}
	if b.Fractions[epoch.TermStoreSerialize] > 0.1 {
		t.Errorf("B: store serialize = %.3f, want negligible", b.Fractions[epoch.TermStoreSerialize])
	}
}

func TestFigure4Distributions(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	c := small()
	rows, err := Figure4(c)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig4Row{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	// Database store misses overlap well (high store MLP); SPECjbb's
	// mostly cannot overlap with anything (the expensive [1][0] bucket).
	if byName["database"].StoreMLP < 1.8 {
		t.Errorf("database store MLP = %.2f, want high", byName["database"].StoreMLP)
	}
	if byName["specjbb"].StoreMLP > byName["database"].StoreMLP {
		t.Error("specjbb store MLP should be below database")
	}
	jbb := byName["specjbb"]
	var jbbStoreEpochs, expensive float64
	for sb := 1; sb <= epoch.MaxStoreMLPBucket; sb++ {
		for lb := 0; lb <= epoch.MaxLoadInstBucket; lb++ {
			jbbStoreEpochs += jbb.Joint[sb][lb]
		}
	}
	expensive = jbb.Joint[1][0]
	if jbbStoreEpochs == 0 || expensive/jbbStoreEpochs < 0.25 {
		t.Errorf("specjbb expensive-store share = %.3f, want prevalent", expensive/jbbStoreEpochs)
	}
}

func TestFigure5SMACHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("slow SMAC sweep")
	}
	c := small()
	c.Insts = 600_000 // scaled by smacRunLength to 1.2M/2.1M
	c.Workloads = []workload.Params{workload.Database(1)}
	cells, err := Figure5(c)
	if err != nil {
		t.Fatal(err)
	}
	get := func(sp uarch.PrefetchMode, entries int) Fig5Cell {
		for _, cell := range cells {
			if !cell.Perfect && cell.Prefetch == sp && cell.SMACEntries == entries {
				return cell
			}
		}
		t.Fatalf("missing cell %v/%d", sp, entries)
		return Fig5Cell{}
	}
	none := get(uarch.Sp0, 0)
	big := get(uarch.Sp0, 4<<10)
	if big.Accelerated == 0 {
		t.Fatal("large SMAC accelerated nothing")
	}
	if big.EPI >= none.EPI {
		t.Errorf("SMAC EPI %.3f should beat none %.3f", big.EPI, none.EPI)
	}
	smallc := get(uarch.Sp0, 256)
	if smallc.Accelerated > big.Accelerated {
		t.Error("SMAC acceleration should not decrease with size")
	}
}

func TestFigure6Scaling(t *testing.T) {
	if testing.Short() {
		t.Skip("slow SMAC sweep")
	}
	c := small()
	c.Insts = 600_000
	c.Workloads = []workload.Params{workload.TPCW(1)}
	cells, err := Figure6(c)
	if err != nil {
		t.Fatal(err)
	}
	// 2 node counts x 5 sizes
	if len(cells) != 10 {
		t.Fatalf("cells = %d", len(cells))
	}
	var inv2, inv4 float64
	for _, cell := range cells {
		if cell.SMACEntries == 4<<10 {
			if cell.Nodes == 2 {
				inv2 = cell.InvalPer1000
			} else {
				inv4 = cell.InvalPer1000
			}
		}
	}
	if inv4 <= inv2 {
		t.Errorf("4-node invalidates (%.3f) should exceed 2-node (%.3f)", inv4, inv2)
	}
}

func TestFigure7Gap(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	c := small()
	c.Workloads = []workload.Params{workload.SPECweb(1)}
	cells, err := Figure7(c)
	if err != nil {
		t.Fatal(err)
	}
	get := func(cfgName string, sp uarch.PrefetchMode, perfect bool) float64 {
		for _, cell := range cells {
			if cell.Config == cfgName && cell.Prefetch == sp && cell.Perfect == perfect {
				return cell.EPI
			}
		}
		t.Fatalf("missing %s/%v/%v", cfgName, sp, perfect)
		return 0
	}
	pc1 := get("PC1", uarch.Sp1, false)
	wc1 := get("WC1", uarch.Sp1, false)
	pc3 := get("PC3", uarch.Sp1, false)
	wc3 := get("WC3", uarch.Sp1, false)
	if wc1 >= pc1 {
		t.Errorf("WC1 (%.3f) should beat PC1 (%.3f)", wc1, pc1)
	}
	if pc3 >= pc1 {
		t.Errorf("PC3 (%.3f) should beat PC1 (%.3f)", pc3, pc1)
	}
	if gap3, gap1 := pc3-wc3, pc1-wc1; gap3 > 0.75*gap1 {
		t.Errorf("SLE+PPS should narrow the gap: %.3f vs %.3f", gap3, gap1)
	}
	// Perfect segments lower-bound their bars.
	if p := get("PC1", uarch.Sp1, true); p > pc1 {
		t.Errorf("perfect (%.3f) should not exceed with-stores (%.3f)", p, pc1)
	}
}

func TestFigure8HWS2(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	c := small()
	c.Workloads = []workload.Params{workload.TPCW(1)}
	cells, err := Figure8(c)
	if err != nil {
		t.Fatal(err)
	}
	get := func(m consistency.Model, h uarch.HWSMode, perfect bool) float64 {
		for _, cell := range cells {
			if cell.Model == m && cell.HWS == h && cell.Perfect == perfect {
				return cell.EPI
			}
		}
		t.Fatalf("missing %v/%v/%v", m, h, perfect)
		return 0
	}
	noHWS := get(consistency.PC, uarch.NoHWS, false)
	hws2 := get(consistency.PC, uarch.HWS2, false)
	hws2perf := get(consistency.PC, uarch.HWS2, true)
	if hws2 >= noHWS {
		t.Errorf("HWS2 (%.3f) should beat NoHWS (%.3f)", hws2, noHWS)
	}
	if hws2perf > 0 && (hws2-hws2perf)/hws2perf > 0.35 {
		t.Errorf("HWS2 (%.3f) should approach its perfect segment (%.3f)", hws2, hws2perf)
	}
	// HWS2 narrows the PC-WC gap substantially (the paper's Figure 8
	// also retains a small residual gap).
	wcHws2 := get(consistency.WC, uarch.HWS2, false)
	gapNo := noHWS - get(consistency.WC, uarch.NoHWS, false)
	gapH2 := hws2 - wcHws2
	if gapH2 > 0.7*gapNo && gapH2 > 0.08 {
		t.Errorf("HWS2 gap (%.3f) should be well below NoHWS gap (%.3f)", gapH2, gapNo)
	}
}

func TestAblationCoalescing(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	c := small()
	c.Workloads = []workload.Params{workload.Database(1)}
	cells, err := AblationCoalescing(c)
	if err != nil {
		t.Fatal(err)
	}
	get := func(gran, sq int) float64 {
		for _, cell := range cells {
			if cell.CoalesceBytes == gran && cell.SQ == sq {
				return cell.EPI
			}
		}
		t.Fatalf("missing %d/%d", gran, sq)
		return 0
	}
	// Coarser coalescing never hurts at a given SQ size.
	if get(64, 32) > get(0, 32)*1.02 {
		t.Errorf("64B coalescing (%.3f) should not exceed none (%.3f)", get(64, 32), get(0, 32))
	}
}

func TestAblationBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("slow SMAC runs")
	}
	c := small()
	c.Insts = 600_000
	c.Workloads = []workload.Params{workload.Database(1)}
	cells, err := AblationBandwidth(c)
	if err != nil {
		t.Fatal(err)
	}
	get := func(s string) BandwidthCell {
		for _, cell := range cells {
			if cell.Scheme == s {
				return cell
			}
		}
		t.Fatalf("missing %s", s)
		return BandwidthCell{}
	}
	sp1 := get("Sp1")
	smac := get("Sp0+SMAC")
	if sp1.PrefetchReqs == 0 {
		t.Error("Sp1 should issue prefetch traffic")
	}
	if smac.PrefetchReqs != 0 {
		t.Error("Sp0+SMAC should issue no prefetch traffic")
	}
	if smac.SMACAccelerated == 0 {
		t.Error("Sp0+SMAC should accelerate stores")
	}
}

func TestAblationScoutReach(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	c := small()
	c.Workloads = []workload.Params{workload.TPCW(1)}
	cells, err := AblationScoutReach(c)
	if err != nil {
		t.Fatal(err)
	}
	var shortR, longR float64
	for _, cell := range cells {
		if cell.Reach == 64 {
			shortR = cell.EPI
		}
		if cell.Reach == 1024 {
			longR = cell.EPI
		}
	}
	if longR > shortR*1.02 {
		t.Errorf("longer scout reach (%.3f) should not exceed short (%.3f)", longR, shortR)
	}
}
