package experiments

import (
	"storemlp/internal/epoch"
	"storemlp/internal/metrics"
	"storemlp/internal/sim"
	"storemlp/internal/uarch"
)

// SummaryRow condenses one default-configuration run into the counters
// and derived metrics behind every figure: raw miss mix, overlap split,
// epoch population and the dominant termination condition. The "all" row
// folds the per-workload statistics with Stats.Merge, so its derived
// metrics are computed over the union of the runs rather than averaged.
type SummaryRow struct {
	Workload         string
	Insts            int64
	Epochs           int64
	EPI              float64
	MLP              float64
	StoreMLP         float64
	LoadInstMLP      float64
	StoreMisses      int64
	LoadMisses       int64
	InstMisses       int64
	OverlappedStores int64
	ExposedStores    int64
	SMACAccelerated  int64
	EpochsWithStore  int64
	// MultiStoreEpochs counts epochs with store MLP >= 2 (from the
	// Figure 4 joint histogram): the epochs where store misses actually
	// overlap each other.
	MultiStoreEpochs int64
	TopTermCond      string
	Snoops           int64
}

// Summary runs the default configuration once per workload and reports
// the full counter set, plus an aggregate "all" row merged across the
// workloads.
func Summary(c Config) ([]SummaryRow, error) {
	c = c.norm()
	stats := make([]*epoch.Stats, len(c.Workloads))
	err := parMap(c.ctx(), len(c.Workloads), c.Parallelism, func(i int) error {
		s, err := c.run(sim.Spec{
			Workload: c.Workloads[i], Uarch: uarch.Default(),
			Insts: c.Insts, Warm: c.Warm,
		})
		if err != nil {
			return err
		}
		stats[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]SummaryRow, 0, len(c.Workloads)+1)
	var total epoch.Stats
	for i, s := range stats {
		rows = append(rows, summaryRow(c.Workloads[i].Name, s))
		total.Merge(s)
	}
	rows = append(rows, summaryRow("all", &total))
	return rows, nil
}

func summaryRow(name string, s *epoch.Stats) SummaryRow {
	top := epoch.TermNone
	for t := epoch.TermCond(0); t < epoch.NumTermConds; t++ {
		if t != epoch.TermNone && s.TermCounts[t] > s.TermCounts[top] {
			top = t
		}
	}
	topName := "-"
	if s.TermCounts[top] > 0 && top != epoch.TermNone {
		topName = top.String()
	}
	var multiStore int64
	for sb := 2; sb < len(s.MLPJoint); sb++ {
		for lb := range s.MLPJoint[sb] {
			multiStore += s.MLPJoint[sb][lb]
		}
	}
	return SummaryRow{
		Workload:         name,
		Insts:            s.Insts,
		Epochs:           s.Epochs,
		EPI:              s.EPI(),
		MLP:              s.MLP(),
		StoreMLP:         s.StoreMLP(),
		LoadInstMLP:      s.LoadInstMLP(),
		StoreMisses:      s.StoreMisses,
		LoadMisses:       s.LoadMisses,
		InstMisses:       s.InstMisses,
		OverlappedStores: s.OverlappedStores,
		ExposedStores:    s.ExposedStores,
		SMACAccelerated:  s.SMACAccelerated,
		EpochsWithStore:  s.EpochsWithStore,
		MultiStoreEpochs: multiStore,
		TopTermCond:      topName,
		Snoops:           s.Snoops,
	}
}

// RenderSummary prints the run-summary counters, one row per workload
// plus the merged "all" row.
func RenderSummary(rows []SummaryRow) string {
	t := metrics.NewTable("Run summary: default configuration, all counters",
		"workload", "insts", "epochs", "EPI", "MLP", "storeMLP", "ldInstMLP",
		"storeMiss", "loadMiss", "instMiss", "overlapped", "exposed",
		"smacAccel", "storeEpochs", "multiStore", "topTerm", "snoops")
	for _, r := range rows {
		t.AddRow(r.Workload, r.Insts, r.Epochs, r.EPI, r.MLP, r.StoreMLP,
			r.LoadInstMLP, r.StoreMisses, r.LoadMisses, r.InstMisses,
			r.OverlappedStores, r.ExposedStores, r.SMACAccelerated,
			r.EpochsWithStore, r.MultiStoreEpochs, r.TopTermCond, r.Snoops)
	}
	return t.String()
}
