package experiments

import (
	"fmt"
	"sort"
	"strings"

	"storemlp/internal/epoch"
	"storemlp/internal/metrics"
	"storemlp/internal/uarch"
)

// The Render* helpers turn experiment rows into text tables whose rows
// and series mirror the paper's tables and figures, for cmd/experiments
// and EXPERIMENTS.md.

// RenderTable1 mirrors the paper's Table 1 layout.
func RenderTable1(rows []Table1Row) string {
	t := metrics.NewTable("Table 1: store and miss rate statistics (per 100 insts, 2MB 4-way L2)",
		"per 100 insts", "database", "tpcw", "specjbb", "specweb")
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	get := func(f func(Table1Row) float64) []interface{} {
		out := make([]interface{}, 0, 4)
		for _, n := range []string{"database", "tpcw", "specjbb", "specweb"} {
			out = append(out, f(byName[n]))
		}
		return out
	}
	t.AddRow(append([]interface{}{"store frequency"}, get(func(r Table1Row) float64 { return r.StoreFreq })...)...)
	t.AddRow(append([]interface{}{"L2 store miss rate"}, get(func(r Table1Row) float64 { return r.StoreMiss })...)...)
	t.AddRow(append([]interface{}{"L2 load miss rate"}, get(func(r Table1Row) float64 { return r.LoadMiss })...)...)
	t.AddRow(append([]interface{}{"L2 inst miss rate"}, get(func(r Table1Row) float64 { return r.InstMiss })...)...)
	return t.String()
}

// RenderTable2 mirrors Table 2.
func RenderTable2(rows []Table2Row) string {
	t := metrics.NewTable("Table 2: fraction of missing stores fully overlapped with computation",
		"workload", "fraction")
	for _, r := range rows {
		t.AddRow(r.Workload, r.Overlapped)
	}
	return t.String()
}

// RenderTable3 mirrors Table 3.
func RenderTable3(rows []Table3Row) string {
	t := metrics.NewTable("Table 3: CPIon-chip for the default configuration",
		"workload", "CPIon-chip")
	for _, r := range rows {
		t.AddRow(r.Workload, r.CPIOnChip)
	}
	return t.String()
}

// RenderFigure2 prints one block per workload: EPI for each prefetch
// mode x store buffer x store queue, plus the perfect-stores floor.
func RenderFigure2(cells []Fig2Cell) string {
	var b strings.Builder
	perWorkload := groupBy(cells, func(c Fig2Cell) string { return c.Workload })
	for _, wl := range sortedKeys(perWorkload) {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 2 (%s): EPI (epochs/1000 insts) vs store prefetch, SB, SQ", wl),
			"prefetch", "SB", "SQ16", "SQ32", "SQ64", "SQ256")
		group := perWorkload[wl]
		var perfect float64
		for _, sp := range []uarch.PrefetchMode{uarch.Sp0, uarch.Sp1, uarch.Sp2} {
			for _, sb := range Fig2SBSizes {
				row := []interface{}{sp.String(), sb}
				for _, sq := range Fig2SQSizes {
					for _, c := range group {
						if !c.Perfect && c.Prefetch == sp && c.SB == sb && c.SQ == sq {
							row = append(row, c.EPI)
						}
					}
				}
				t.AddRow(row...)
			}
		}
		for _, c := range group {
			if c.Perfect {
				perfect = c.EPI
			}
		}
		b.WriteString(t.String())
		fmt.Fprintf(&b, "perfect stores (never stall): %.3f\n\n", perfect)
	}
	return b.String()
}

// RenderFigure3 prints the termination-condition mix per workload for
// variants A (default) and B (SLE + prefetch past serializing).
func RenderFigure3(rows []Fig3Row) string {
	var b strings.Builder
	for _, variant := range []string{"A", "B"} {
		title := "Figure 3A: window termination conditions, default configuration"
		if variant == "B" {
			title = "Figure 3B: window termination conditions, SLE + prefetch past serializing"
		}
		t := metrics.NewTable(title, "condition", "database", "tpcw", "specjbb", "specweb")
		byName := map[string]Fig3Row{}
		for _, r := range rows {
			if r.Variant == variant {
				byName[r.Workload] = r
			}
		}
		for cond := epoch.TermCond(0); cond < epoch.NumTermConds; cond++ {
			row := []interface{}{cond.String()}
			any := false
			for _, n := range []string{"database", "tpcw", "specjbb", "specweb"} {
				f := byName[n].Fractions[cond]
				if f > 0 {
					any = true
				}
				row = append(row, f)
			}
			if any {
				t.AddRow(row...)
			}
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFigure4 prints, per workload, the store-MLP distribution
// segmented by combined load+instruction MLP.
func RenderFigure4(rows []Fig4Row) string {
	var b strings.Builder
	for _, r := range rows {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 4 (%s): fraction of epochs by store MLP x load+inst MLP (store MLP avg %.2f)",
				r.Workload, r.StoreMLP),
			"store MLP", "li=0", "li=1", "li=2", "li=3", "li=4", "li>=5")
		for sb := 1; sb <= epoch.MaxStoreMLPBucket; sb++ {
			label := fmt.Sprintf("%d", sb)
			if sb == epoch.MaxStoreMLPBucket {
				label = ">=10"
			}
			row := []interface{}{label}
			sum := 0.0
			for lb := 0; lb <= epoch.MaxLoadInstBucket; lb++ {
				row = append(row, r.Joint[sb][lb])
				sum += r.Joint[sb][lb]
			}
			if sum > 0 {
				t.AddRow(row...)
			}
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFigure5 prints the SMAC sweep per workload.
func RenderFigure5(cells []Fig5Cell) string {
	var b strings.Builder
	b.WriteString("Figure 5 runs a 1/32-scale SMAC model (see DESIGN.md): entries 256..4K\n" +
		"correspond to the paper's 8K..128K.\n\n")
	perWorkload := groupBy(cells, func(c Fig5Cell) string { return c.Workload })
	for _, wl := range sortedKeys(perWorkload) {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 5 (%s): EPI vs SMAC size and store prefetching", wl),
			"prefetch", "no SMAC", "256", "512", "1K", "2K", "4K")
		group := perWorkload[wl]
		var perfect float64
		for _, sp := range []uarch.PrefetchMode{uarch.Sp0, uarch.Sp1, uarch.Sp2} {
			row := []interface{}{sp.String()}
			for _, entries := range append([]int{0}, Fig5SMACEntries...) {
				for _, c := range group {
					if !c.Perfect && c.Prefetch == sp && c.SMACEntries == entries {
						row = append(row, c.EPI)
					}
				}
			}
			t.AddRow(row...)
		}
		for _, c := range group {
			if c.Perfect {
				perfect = c.EPI
			}
		}
		b.WriteString(t.String())
		fmt.Fprintf(&b, "perfect stores: %.3f\n\n", perfect)
	}
	return b.String()
}

// RenderFigure6 prints the coherence-impact series.
func RenderFigure6(cells []Fig6Cell) string {
	var b strings.Builder
	left := metrics.NewTable("Figure 6 (left): SMAC coherence invalidates per 1000 insts",
		"workload", "nodes", "256", "512", "1K", "2K", "4K")
	right := metrics.NewTable("Figure 6 (right): % of missing stores hitting invalidated SMAC lines",
		"workload", "nodes", "256", "512", "1K", "2K", "4K")
	perKey := groupBy(cells, func(c Fig6Cell) string { return fmt.Sprintf("%s/%d", c.Workload, c.Nodes) })
	for _, key := range sortedKeys(perKey) {
		group := perKey[key]
		parts := strings.SplitN(key, "/", 2)
		lrow := []interface{}{parts[0], parts[1]}
		rrow := []interface{}{parts[0], parts[1]}
		for _, entries := range Fig5SMACEntries {
			for _, c := range group {
				if c.SMACEntries == entries {
					lrow = append(lrow, c.InvalPer1000)
					rrow = append(rrow, c.PctHitInvalid)
				}
			}
		}
		left.AddRow(lrow...)
		right.AddRow(rrow...)
	}
	b.WriteString(left.String())
	b.WriteString("\n")
	b.WriteString(right.String())
	return b.String()
}

// RenderFigure7 prints the consistency-model comparison per workload.
func RenderFigure7(cells []Fig7Cell) string {
	var b strings.Builder
	perWorkload := groupBy(cells, func(c Fig7Cell) string { return c.Workload })
	for _, wl := range sortedKeys(perWorkload) {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 7 (%s): EPI with stores / perfect segment", wl),
			"prefetch", "PC1", "PC2", "PC3", "WC1", "WC2", "WC3")
		group := perWorkload[wl]
		for _, sp := range []uarch.PrefetchMode{uarch.Sp0, uarch.Sp1, uarch.Sp2} {
			row := []interface{}{sp.String()}
			for _, cfg := range Fig7Configs {
				var with, perf float64
				for _, c := range group {
					if c.Prefetch == sp && c.Config == cfg {
						if c.Perfect {
							perf = c.EPI
						} else {
							with = c.EPI
						}
					}
				}
				row = append(row, fmt.Sprintf("%.2f/%.2f", with, perf))
			}
			t.AddRow(row...)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFigure8 prints the Hardware Scout comparison per workload.
func RenderFigure8(cells []Fig8Cell) string {
	var b strings.Builder
	perWorkload := groupBy(cells, func(c Fig8Cell) string { return c.Workload })
	for _, wl := range sortedKeys(perWorkload) {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 8 (%s): EPI with stores / perfect segment", wl),
			"model", "NoHWS", "HWS0", "HWS1", "HWS2")
		group := perWorkload[wl]
		for _, model := range []string{"PC", "WC"} {
			row := []interface{}{model}
			for _, h := range []uarch.HWSMode{uarch.NoHWS, uarch.HWS0, uarch.HWS1, uarch.HWS2} {
				var with, perf float64
				for _, c := range group {
					if c.Model.String() == model && c.HWS == h {
						if c.Perfect {
							perf = c.EPI
						} else {
							with = c.EPI
						}
					}
				}
				row = append(row, fmt.Sprintf("%.2f/%.2f", with, perf))
			}
			t.AddRow(row...)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// RenderAblations prints every ablation sweep.
func RenderAblations(r *AblationResults) string {
	co, bw, sr, le := r.Coalescing, r.Bandwidth, r.ScoutReach, r.LockElision
	var b strings.Builder
	t := metrics.NewTable("Ablation: store coalescing granularity x store queue size (EPI)",
		"workload", "granularity", "SQ16", "SQ32", "SQ64")
	perKey := groupBy(co, func(c CoalescingCell) string {
		return fmt.Sprintf("%s/%02d", c.Workload, c.CoalesceBytes)
	})
	for _, key := range sortedKeys(perKey) {
		group := perKey[key]
		parts := strings.SplitN(key, "/", 2)
		row := []interface{}{parts[0], parts[1]}
		for _, sq := range []int{16, 32, 64} {
			for _, c := range group {
				if c.SQ == sq {
					row = append(row, c.EPI)
				}
			}
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	b.WriteString("\n")

	t2 := metrics.NewTable("Ablation: L2 bandwidth — prefetching vs SMAC (per 1000 insts)",
		"workload", "scheme", "EPI", "store traffic", "prefetch reqs", "smac-accel")
	for _, c := range bw {
		t2.AddRow(c.Workload, c.Scheme, c.EPI, c.StoreTraffic, c.PrefetchReqs, c.SMACAccelerated)
	}
	b.WriteString(t2.String())
	b.WriteString("\n")

	t3 := metrics.NewTable("Ablation: Hardware Scout reach (HWS2, EPI)",
		"workload", "reach=64", "128", "256", "454", "1024")
	perWl := groupBy(sr, func(c ScoutReachCell) string { return c.Workload })
	for _, wl := range sortedKeys(perWl) {
		row := []interface{}{wl}
		for _, reach := range []int{64, 128, 256, 454, 1024} {
			for _, c := range perWl[wl] {
				if c.Reach == reach {
					row = append(row, c.EPI)
				}
			}
		}
		t3.AddRow(row...)
	}
	b.WriteString(t3.String())
	b.WriteString("\n")

	t4 := metrics.NewTable("Ablation: lock removal — SLE vs transactional memory (EPI, PC)",
		"workload", "base", "SLE", "TM")
	perWl2 := groupBy(le, func(c LockElisionCell) string { return c.Workload })
	for _, wl := range sortedKeys(perWl2) {
		row := []interface{}{wl}
		for _, scheme := range []string{"base", "SLE", "TM"} {
			for _, c := range perWl2[wl] {
				if c.Scheme == scheme {
					row = append(row, c.EPI)
				}
			}
		}
		t4.AddRow(row...)
	}
	b.WriteString(t4.String())
	b.WriteString("\n")

	t5 := metrics.NewTable("Ablation: shared-L2 CMP interference (EPI)",
		"workload", "solo", "co-scheduled", "increase")
	perWl3 := groupBy(r.SharedL2, func(c SharedL2Cell) string { return c.Workload })
	for _, wl := range sortedKeys(perWl3) {
		var solo, co float64
		for _, c := range perWl3[wl] {
			if c.CoRun {
				co = c.EPI
			} else {
				solo = c.EPI
			}
		}
		inc := "-"
		if solo > 0 {
			inc = fmt.Sprintf("%.0f%%", 100*(co-solo)/solo)
		}
		t5.AddRow(wl, solo, co, inc)
	}
	b.WriteString(t5.String())
	b.WriteString("\n")

	t6 := metrics.NewTable("Ablation: SMAC super-line size at 1K tags, 64B sub-blocks (Sp0, scaled)",
		"workload", "256B", "1KB", "2KB", "4KB")
	perWl4 := groupBy(r.SMACGeometry, func(c SMACGeometryCell) string { return c.Workload })
	for _, wl := range sortedKeys(perWl4) {
		row := []interface{}{wl}
		for _, sl := range []int{256, 1024, 2048, 4096} {
			for _, c := range perWl4[wl] {
				if c.SuperLineBytes == sl {
					row = append(row, c.EPI)
				}
			}
		}
		t6.AddRow(row...)
	}
	b.WriteString(t6.String())
	return b.String()
}

func groupBy[T any](items []T, key func(T) string) map[string][]T {
	m := map[string][]T{}
	for _, it := range items {
		k := key(it)
		m[k] = append(m[k], it)
	}
	return m
}

func sortedKeys[T any](m map[string][]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
