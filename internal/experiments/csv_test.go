package experiments

import (
	"bytes"
	"strings"
	"testing"

	"storemlp/internal/epoch"
	"storemlp/internal/uarch"
)

func TestToCSVScalars(t *testing.T) {
	rows := []Table1Row{
		{Workload: "database", StoreFreq: 10.09, StoreMiss: 0.36, LoadMiss: 0.57, InstMiss: 0.09},
	}
	recs, err := ToCSV(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0][0] != "Workload" || recs[0][1] != "StoreFreq" {
		t.Errorf("header = %v", recs[0])
	}
	if recs[1][0] != "database" || recs[1][1] != "10.09" {
		t.Errorf("row = %v", recs[1])
	}
}

func TestToCSVEnumsAndBools(t *testing.T) {
	rows := []Fig2Cell{
		{Workload: "tpcw", Prefetch: uarch.Sp1, SB: 16, SQ: 32, EPI: 1.5},
		{Workload: "tpcw", Perfect: true, EPI: 1.1},
	}
	recs, err := ToCSV(rows)
	if err != nil {
		t.Fatal(err)
	}
	// PrefetchMode renders via its String method.
	joined := strings.Join(recs[1], ",")
	if !strings.Contains(joined, "Sp1") {
		t.Errorf("row = %v", recs[1])
	}
	if !strings.Contains(strings.Join(recs[2], ","), "true") {
		t.Errorf("bool row = %v", recs[2])
	}
}

func TestToCSVFlattensArrays(t *testing.T) {
	var row Fig3Row
	row.Workload = "specjbb"
	row.Fractions[epoch.TermStoreSerialize] = 0.8
	recs, err := ToCSV([]Fig3Row{row})
	if err != nil {
		t.Fatal(err)
	}
	wantCols := 3 + int(epoch.NumTermConds) // Workload, Variant, EpochsWithStore + fractions
	if len(recs[0]) != wantCols {
		t.Errorf("columns = %d, want %d: %v", len(recs[0]), wantCols, recs[0])
	}
	found := false
	for _, h := range recs[0] {
		if strings.HasPrefix(h, "Fractions[") {
			found = true
		}
	}
	if !found {
		t.Errorf("no flattened array headers: %v", recs[0])
	}
}

func TestToCSVErrors(t *testing.T) {
	if _, err := ToCSV(42); err == nil {
		t.Error("non-slice should error")
	}
	if _, err := ToCSV([]int{1}); err == nil {
		t.Error("slice of non-structs should error")
	}
	type empty struct{ ch chan int }
	if _, err := ToCSV([]empty{{}}); err == nil {
		t.Error("no CSV-able fields should error")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	rows := []Table2Row{{Workload: "tpcw", Overlapped: 0.12}}
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "Workload,Overlapped") || !strings.Contains(got, "tpcw,0.12") {
		t.Errorf("csv output:\n%s", got)
	}
}
