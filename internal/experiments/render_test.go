package experiments

import (
	"strings"
	"testing"

	"storemlp/internal/consistency"
	"storemlp/internal/epoch"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

func TestRenderTable1(t *testing.T) {
	rows := []Table1Row{
		{Workload: "database", StoreFreq: 10.09, StoreMiss: 0.36, LoadMiss: 0.57, InstMiss: 0.09},
		{Workload: "tpcw", StoreFreq: 7.28, StoreMiss: 0.12, LoadMiss: 0.06, InstMiss: 0.06},
		{Workload: "specjbb", StoreFreq: 7.52, StoreMiss: 0.07, LoadMiss: 0.25, InstMiss: 0.002},
		{Workload: "specweb", StoreFreq: 7.20, StoreMiss: 0.13, LoadMiss: 0.14, InstMiss: 0.01},
	}
	out := RenderTable1(rows)
	for _, want := range []string{"Table 1", "store frequency", "10.090", "0.360", "specweb"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderTable2And3(t *testing.T) {
	out := RenderTable2([]Table2Row{{Workload: "database", Overlapped: 0.09}})
	if !strings.Contains(out, "0.090") || !strings.Contains(out, "Table 2") {
		t.Errorf("table2:\n%s", out)
	}
	out = RenderTable3([]Table3Row{{Workload: "specjbb", CPIOnChip: 0.95}})
	if !strings.Contains(out, "0.950") || !strings.Contains(out, "Table 3") {
		t.Errorf("table3:\n%s", out)
	}
}

func TestRenderFigure2(t *testing.T) {
	var cells []Fig2Cell
	for _, sp := range []uarch.PrefetchMode{uarch.Sp0, uarch.Sp1, uarch.Sp2} {
		for _, sb := range Fig2SBSizes {
			for _, sq := range Fig2SQSizes {
				cells = append(cells, Fig2Cell{
					Workload: "tpcw", Prefetch: sp, SB: sb, SQ: sq,
					EPI: float64(sq) / 100,
				})
			}
		}
	}
	cells = append(cells, Fig2Cell{Workload: "tpcw", Perfect: true, EPI: 1.1})
	out := RenderFigure2(cells)
	for _, want := range []string{"Figure 2 (tpcw)", "Sp0", "Sp2", "SQ256", "perfect stores (never stall): 1.100"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFigure3(t *testing.T) {
	mk := func(v string) Fig3Row {
		r := Fig3Row{Workload: "specjbb", Variant: v, EpochsWithStore: 100}
		r.Fractions[epoch.TermStoreSerialize] = 0.8
		return r
	}
	out := RenderFigure3([]Fig3Row{mk("A"), mk("B")})
	for _, want := range []string{"Figure 3A", "Figure 3B", "store serialize", "0.800"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFigure4(t *testing.T) {
	r := Fig4Row{Workload: "database", StoreMLP: 3.5}
	r.Joint[1][0] = 0.25
	r.Joint[10][5] = 0.01
	out := RenderFigure4([]Fig4Row{r})
	for _, want := range []string{"Figure 4 (database)", "3.50", "0.250", ">=10"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFigure5(t *testing.T) {
	var cells []Fig5Cell
	for _, e := range append([]int{0}, Fig5SMACEntries...) {
		cells = append(cells, Fig5Cell{Workload: "database", Prefetch: uarch.Sp0, SMACEntries: e, EPI: 5})
		cells = append(cells, Fig5Cell{Workload: "database", Prefetch: uarch.Sp1, SMACEntries: e, EPI: 4})
		cells = append(cells, Fig5Cell{Workload: "database", Prefetch: uarch.Sp2, SMACEntries: e, EPI: 3})
	}
	cells = append(cells, Fig5Cell{Workload: "database", Perfect: true, EPI: 2.5})
	out := RenderFigure5(cells)
	for _, want := range []string{"Figure 5 (database)", "no SMAC", "4K", "perfect stores: 2.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFigure6(t *testing.T) {
	var cells []Fig6Cell
	for _, nodes := range []int{2, 4} {
		for _, e := range Fig5SMACEntries {
			cells = append(cells, Fig6Cell{
				Workload: "tpcw", Nodes: nodes, SMACEntries: e,
				InvalPer1000: 0.1 * float64(nodes), PctHitInvalid: float64(nodes),
			})
		}
	}
	out := RenderFigure6(cells)
	for _, want := range []string{"Figure 6 (left)", "Figure 6 (right)", "tpcw", "0.400"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFigure7(t *testing.T) {
	var cells []Fig7Cell
	for _, sp := range []uarch.PrefetchMode{uarch.Sp0, uarch.Sp1, uarch.Sp2} {
		for _, cfg := range Fig7Configs {
			cells = append(cells,
				Fig7Cell{Workload: "specweb", Prefetch: sp, Config: cfg, EPI: 2},
				Fig7Cell{Workload: "specweb", Prefetch: sp, Config: cfg, Perfect: true, EPI: 1})
		}
	}
	out := RenderFigure7(cells)
	for _, want := range []string{"Figure 7 (specweb)", "PC1", "WC3", "2.00/1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFigure8(t *testing.T) {
	var cells []Fig8Cell
	for _, m := range []consistency.Model{consistency.PC, consistency.WC} {
		for _, h := range []uarch.HWSMode{uarch.NoHWS, uarch.HWS0, uarch.HWS1, uarch.HWS2} {
			cells = append(cells,
				Fig8Cell{Workload: "tpcw", Model: m, HWS: h, EPI: 1.5},
				Fig8Cell{Workload: "tpcw", Model: m, HWS: h, Perfect: true, EPI: 1})
		}
	}
	out := RenderFigure8(cells)
	for _, want := range []string{"Figure 8 (tpcw)", "NoHWS", "HWS2", "1.50/1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderAblations(t *testing.T) {
	co := []CoalescingCell{
		{Workload: "database", CoalesceBytes: 0, SQ: 16, EPI: 5},
		{Workload: "database", CoalesceBytes: 0, SQ: 32, EPI: 4.8},
		{Workload: "database", CoalesceBytes: 0, SQ: 64, EPI: 4.7},
		{Workload: "database", CoalesceBytes: 64, SQ: 32, EPI: 4.7},
	}
	bw := []BandwidthCell{
		{Workload: "database", Scheme: "Sp1", EPI: 4.8, StoreTraffic: 100, PrefetchReqs: 3.5},
		{Workload: "database", Scheme: "Sp0+SMAC", EPI: 4.9, StoreTraffic: 100, SMACAccelerated: 2.5},
	}
	sr := []ScoutReachCell{
		{Workload: "tpcw", Reach: 64, EPI: 1.4},
		{Workload: "tpcw", Reach: 1024, EPI: 1.2},
	}
	le := []LockElisionCell{
		{Workload: "tpcw", Scheme: "base", EPI: 1.5},
		{Workload: "tpcw", Scheme: "SLE", EPI: 1.3},
		{Workload: "tpcw", Scheme: "TM", EPI: 1.29},
	}
	sh := []SharedL2Cell{
		{Workload: "tpcw", CoRun: false, EPI: 1.5},
		{Workload: "tpcw", CoRun: true, EPI: 1.8},
	}
	ge := []SMACGeometryCell{
		{Workload: "tpcw", SuperLineBytes: 256, EPI: 2.0},
		{Workload: "tpcw", SuperLineBytes: 1024, EPI: 1.6},
		{Workload: "tpcw", SuperLineBytes: 2048, EPI: 1.5},
		{Workload: "tpcw", SuperLineBytes: 4096, EPI: 1.55},
	}
	out := RenderAblations(&AblationResults{
		Coalescing: co, Bandwidth: bw, ScoutReach: sr,
		LockElision: le, SharedL2: sh, SMACGeometry: ge,
	})
	for _, want := range []string{"coalescing", "bandwidth", "Sp0+SMAC", "Scout reach",
		"SLE vs transactional", "1.290", "shared-L2", "20%", "super-line", "1.550"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAblationLockElisionRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	c := small()
	c.Workloads = []workload.Params{workload.SPECjbb(1)} // lock-bound
	cells, err := AblationLockElision(c)
	if err != nil {
		t.Fatal(err)
	}
	var base, sle, tm float64
	for _, cell := range cells {
		switch cell.Scheme {
		case "base":
			base = cell.EPI
		case "SLE":
			sle = cell.EPI
		case "TM":
			tm = cell.EPI
		}
	}
	if sle >= base || tm >= base {
		t.Errorf("lock removal should help: base=%.3f sle=%.3f tm=%.3f", base, sle, tm)
	}
	// The paper: TM achieves similar benefits as SLE.
	if diff := tm - sle; diff > 0.15*sle || diff < -0.15*sle {
		t.Errorf("TM (%.3f) should be close to SLE (%.3f)", tm, sle)
	}
}
