// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Tables 1-3 and Figures 2-8, plus ablations of design
// choices called out in DESIGN.md. Each function returns structured rows
// so that cmd/experiments can render them and the benchmark harness can
// time them.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"storemlp/internal/epoch"
	"storemlp/internal/sim"
	"storemlp/internal/workload"
)

// Config controls an experiment sweep.
type Config struct {
	// Seed parameterizes the workload generators and coherence traffic.
	Seed int64
	// Insts is the measured instruction count per run; Warm the cache
	// warmup prefix. The SMAC experiments (Figures 5 and 6) scale these
	// by their own per-workload factors (see smacScale).
	Insts int64
	Warm  int64
	// Parallelism bounds concurrent simulation runs (default: NumCPU).
	Parallelism int
	// Workloads defaults to the paper's four.
	Workloads []workload.Params
	// Ctx cancels the sweep mid-flight (nil = context.Background()).
	// cmd/experiments wires a SIGINT-bound context here so a multi-minute
	// harness run dies promptly on Ctrl-C.
	Ctx context.Context
}

// DefaultConfig returns a configuration sized for the full harness:
// 2M measured instructions per run after 1M of warmup.
func DefaultConfig() Config {
	return Config{Seed: 1, Insts: 2_000_000, Warm: 1_000_000}
}

func (c Config) norm() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Insts <= 0 {
		c.Insts = 2_000_000
	}
	if c.Warm < 0 {
		c.Warm = 0
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if len(c.Workloads) == 0 {
		c.Workloads = workload.All(c.Seed)
	}
	return c
}

// ctx returns the sweep's context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// run executes one simulation under the sweep's context, so cancelling
// Config.Ctx aborts every in-flight engine loop.
func (c Config) run(spec sim.Spec) (*epoch.Stats, error) {
	return sim.RunContext(c.ctx(), spec)
}

// parMap runs fn(0..n-1) with bounded parallelism, returning the first
// error. A cancelled ctx stops launching new work; already-running fns
// are expected to observe the same ctx themselves.
func parMap(ctx context.Context, n, parallelism int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if parallelism < 1 {
		parallelism = 1
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			mu.Lock()
			if first == nil {
				first = err
			}
			mu.Unlock()
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(i); err != nil {
				mu.Lock()
				if first == nil {
					first = fmt.Errorf("experiments: run %d: %w", i, err)
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return first
}
