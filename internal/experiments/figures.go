package experiments

import (
	"storemlp/internal/consistency"
	"storemlp/internal/epoch"
	"storemlp/internal/sim"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

// Fig2Cell is one bar segment of Figure 2: EPI (epochs per 1000
// instructions) for a store prefetch mode x store buffer size x store
// queue size, per workload. Perfect marks the "stores never stall"
// bottom segment.
type Fig2Cell struct {
	Workload string
	Prefetch uarch.PrefetchMode
	SB, SQ   int
	Perfect  bool
	EPI      float64
}

// Fig2SQSizes are the store queue sizes swept in Figure 2.
var Fig2SQSizes = []int{16, 32, 64, 256}

// Fig2SBSizes are the store buffer sizes swept in Figure 2.
var Fig2SBSizes = []int{8, 16, 32}

// Figure2 sweeps store prefetching, store buffer and store queue sizes
// under processor consistency.
func Figure2(c Config) ([]Fig2Cell, error) {
	c = c.norm()
	var cells []Fig2Cell
	for _, w := range c.Workloads {
		for _, sp := range []uarch.PrefetchMode{uarch.Sp0, uarch.Sp1, uarch.Sp2} {
			for _, sb := range Fig2SBSizes {
				for _, sq := range Fig2SQSizes {
					cells = append(cells, Fig2Cell{Workload: w.Name, Prefetch: sp, SB: sb, SQ: sq})
				}
			}
		}
		cells = append(cells, Fig2Cell{Workload: w.Name, Perfect: true})
	}
	byName := workloadIndex(c.Workloads)
	err := parMap(c.ctx(), len(cells), c.Parallelism, func(i int) error {
		cell := &cells[i]
		cfg := uarch.Default()
		if cell.Perfect {
			cfg.PerfectStores = true
		} else {
			cfg.StorePrefetch = cell.Prefetch
			cfg.StoreBuffer = cell.SB
			cfg.StoreQueue = cell.SQ
		}
		s, err := c.run(sim.Spec{Workload: byName[cell.Workload], Uarch: cfg, Insts: c.Insts, Warm: c.Warm})
		if err != nil {
			return err
		}
		cell.EPI = s.EPI()
		return nil
	})
	return cells, err
}

// Fig3Row is one bar of Figure 3: the window-termination-condition mix
// over epochs with store MLP >= 1, for the default configuration (A) or
// for SLE plus prefetch-past-serializing (B).
type Fig3Row struct {
	Workload        string
	Variant         string // "A" (default) or "B" (SLE+PPS)
	EpochsWithStore int64
	Fractions       [epoch.NumTermConds]float64
}

// Figure3 produces both variants for every workload.
func Figure3(c Config) ([]Fig3Row, error) {
	c = c.norm()
	var rows []Fig3Row
	for _, w := range c.Workloads {
		rows = append(rows,
			Fig3Row{Workload: w.Name, Variant: "A"},
			Fig3Row{Workload: w.Name, Variant: "B"})
	}
	byName := workloadIndex(c.Workloads)
	err := parMap(c.ctx(), len(rows), c.Parallelism, func(i int) error {
		row := &rows[i]
		cfg := uarch.Default()
		if row.Variant == "B" {
			cfg.SLE = true
			cfg.PrefetchPastSerializing = true
		}
		s, err := c.run(sim.Spec{Workload: byName[row.Workload], Uarch: cfg, Insts: c.Insts, Warm: c.Warm})
		if err != nil {
			return err
		}
		row.EpochsWithStore = s.EpochsWithStore
		for t := epoch.TermCond(0); t < epoch.NumTermConds; t++ {
			row.Fractions[t] = s.TermFraction(t)
		}
		return nil
	})
	return rows, err
}

// Fig4Row is one graph of Figure 4: the joint distribution of store MLP
// (1..>=10) and combined load+instruction MLP (0..>=5) over epochs, for
// the default configuration.
type Fig4Row struct {
	Workload string
	// Joint[s][l]: fraction of all epochs with store MLP bucket s and
	// load+inst MLP bucket l.
	Joint [epoch.MaxStoreMLPBucket + 1][epoch.MaxLoadInstBucket + 1]float64
	// StoreMLP is the average over epochs with at least one store miss.
	StoreMLP float64
}

// Figure4 measures the MLP distributions.
func Figure4(c Config) ([]Fig4Row, error) {
	c = c.norm()
	rows := make([]Fig4Row, len(c.Workloads))
	err := parMap(c.ctx(), len(c.Workloads), c.Parallelism, func(i int) error {
		w := c.Workloads[i]
		s, err := c.run(sim.Spec{Workload: w, Uarch: uarch.Default(), Insts: c.Insts, Warm: c.Warm})
		if err != nil {
			return err
		}
		rows[i].Workload = w.Name
		rows[i].StoreMLP = s.StoreMLP()
		for sb := 0; sb <= epoch.MaxStoreMLPBucket; sb++ {
			for lb := 0; lb <= epoch.MaxLoadInstBucket; lb++ {
				rows[i].Joint[sb][lb] = s.MLPJointFraction(sb, lb)
			}
		}
		return nil
	})
	return rows, err
}

// ---- SMAC experiments (Figures 5 and 6) ----

// Fig5SMACEntries is the SMAC size sweep. The paper sweeps 8K-128K
// entries against reuse footprints of tens to hundreds of megabytes,
// which needs ~1O(1B) warm instructions; this harness runs a 1/32-scale
// model — store-miss density x4 and churn working sets shrunk so the
// evict-then-revisit cycle fits in a few million instructions — and
// sweeps 256-4K entries (= 8K..128K / 32). Shapes (saturation ordering,
// Sp0+SMAC ~ Sp2) are preserved; absolute entry counts are scaled.
var Fig5SMACEntries = []int{256, 512, 1 << 10, 2 << 10, 4 << 10}

// smacScale compresses a workload's store-miss timescale for the SMAC
// experiments: density x4 (more for very store-light workloads, so the
// churn sweep still wraps within the run), with the churn working set
// sized for one revisit per ~5M instructions — just after the lines
// leave the L2.
func smacScale(w workload.Params) workload.Params {
	w.Name = w.Name + "+smacscale"
	mult := 4.0
	if w.StoreMissPer100*mult < 0.40 {
		mult = 0.40 / w.StoreMissPer100
	}
	w.StoreMissPer100 *= mult
	if w.StoreMissPer100 > w.StorePer100 {
		w.StoreMissPer100 = w.StorePer100
	}
	// One full sweep of the private churn region every ~5M instructions.
	w.StoreWSBytes = int64(w.StoreMissPer100 / 100 * 5_000_000 * 64)
	w.SharedWSBytes = 128 << 10
	return w
}

// smacRunLength returns per-run instruction counts for the scaled SMAC
// experiments, honouring the caller's Insts as a scale factor relative
// to the default 2M.
func smacRunLength(c Config) (insts, warm int64) {
	scale := float64(c.Insts) / 2_000_000
	insts = int64(4_000_000 * scale)
	warm = int64(7_000_000 * scale)
	if insts < 1000 {
		insts = 1000
	}
	return insts, warm
}

// Fig5Cell is one bar segment of Figure 5: EPI per store prefetch mode
// and SMAC size (0 = no SMAC; Perfect = stores never stall).
type Fig5Cell struct {
	Workload    string
	Prefetch    uarch.PrefetchMode
	SMACEntries int
	Perfect     bool
	EPI         float64
	Accelerated int64
}

// Figure5 sweeps the SMAC against the store prefetch modes.
func Figure5(c Config) ([]Fig5Cell, error) {
	c = c.norm()
	insts, warm := smacRunLength(c)
	var cells []Fig5Cell
	for _, w := range c.Workloads {
		for _, sp := range []uarch.PrefetchMode{uarch.Sp0, uarch.Sp1, uarch.Sp2} {
			cells = append(cells, Fig5Cell{Workload: w.Name, Prefetch: sp})
			for _, e := range Fig5SMACEntries {
				cells = append(cells, Fig5Cell{Workload: w.Name, Prefetch: sp, SMACEntries: e})
			}
		}
		cells = append(cells, Fig5Cell{Workload: w.Name, Perfect: true})
	}
	byName := workloadIndex(c.Workloads)
	err := parMap(c.ctx(), len(cells), c.Parallelism, func(i int) error {
		cell := &cells[i]
		cfg := uarch.Default()
		if cell.Perfect {
			cfg.PerfectStores = true
		} else {
			cfg.StorePrefetch = cell.Prefetch
			cfg.SMACEntries = cell.SMACEntries
		}
		w := smacScale(byName[cell.Workload])
		s, err := c.run(sim.Spec{Workload: w, Uarch: cfg, Insts: insts, Warm: warm})
		if err != nil {
			return err
		}
		cell.EPI = s.EPI()
		cell.Accelerated = s.SMACAccelerated
		return nil
	})
	return cells, err
}

// Fig6Cell is one point of Figure 6: SMAC coherence invalidates per 1000
// instructions (left graph) and the percentage of missing stores that
// hit an invalidated SMAC sub-block (right graph), as node count and
// SMAC size vary.
type Fig6Cell struct {
	Workload      string
	Nodes         int
	SMACEntries   int
	InvalPer1000  float64
	PctHitInvalid float64
}

// Figure6 measures the impact of cross-chip coherence on the SMAC.
func Figure6(c Config) ([]Fig6Cell, error) {
	c = c.norm()
	insts, warm := smacRunLength(c)
	var cells []Fig6Cell
	for _, w := range c.Workloads {
		for _, nodes := range []int{2, 4} {
			for _, e := range Fig5SMACEntries {
				cells = append(cells, Fig6Cell{Workload: w.Name, Nodes: nodes, SMACEntries: e})
			}
		}
	}
	byName := workloadIndex(c.Workloads)
	err := parMap(c.ctx(), len(cells), c.Parallelism, func(i int) error {
		cell := &cells[i]
		cfg := uarch.Default()
		cfg.SMACEntries = cell.SMACEntries
		cfg.Nodes = cell.Nodes
		w := smacScale(byName[cell.Workload])
		s, err := c.run(sim.Spec{Workload: w, Uarch: cfg, Insts: insts, Warm: warm})
		if err != nil {
			return err
		}
		cell.InvalPer1000 = 1000 * float64(s.SMAC.CoherenceInvalidates) / float64(s.Insts)
		if s.SMAC.Probes > 0 {
			cell.PctHitInvalid = 100 * float64(s.SMAC.HitInvalidated) / float64(s.SMAC.Probes)
		}
		return nil
	})
	return cells, err
}

// ---- consistency-model experiments (Figure 7) ----

// Fig7Configs names the six configurations of Figure 7.
var Fig7Configs = []string{"PC1", "PC2", "PC3", "WC1", "WC2", "WC3"}

func fig7Uarch(name string) uarch.Config {
	cfg := uarch.Default()
	switch name {
	case "PC1":
	case "PC2":
		cfg.PrefetchPastSerializing = true
	case "PC3":
		cfg.PrefetchPastSerializing = true
		cfg.SLE = true
	case "WC1":
		cfg.Model = consistency.WC
	case "WC2":
		cfg.Model = consistency.WC
		cfg.PrefetchPastSerializing = true
	case "WC3":
		cfg.Model = consistency.WC
		cfg.PrefetchPastSerializing = true
		cfg.SLE = true
	}
	return cfg
}

// Fig7Cell is one bar segment of Figure 7.
type Fig7Cell struct {
	Workload string
	Prefetch uarch.PrefetchMode
	Config   string // PC1..PC3, WC1..WC3
	Perfect  bool   // bottom segment: stores never stall
	EPI      float64
}

// Figure7 compares the memory consistency models and their
// optimizations (prefetch past serializing instructions, SLE).
func Figure7(c Config) ([]Fig7Cell, error) {
	c = c.norm()
	var cells []Fig7Cell
	for _, w := range c.Workloads {
		for _, sp := range []uarch.PrefetchMode{uarch.Sp0, uarch.Sp1, uarch.Sp2} {
			for _, name := range Fig7Configs {
				cells = append(cells,
					Fig7Cell{Workload: w.Name, Prefetch: sp, Config: name},
					Fig7Cell{Workload: w.Name, Prefetch: sp, Config: name, Perfect: true})
			}
		}
	}
	byName := workloadIndex(c.Workloads)
	err := parMap(c.ctx(), len(cells), c.Parallelism, func(i int) error {
		cell := &cells[i]
		cfg := fig7Uarch(cell.Config)
		cfg.StorePrefetch = cell.Prefetch
		cfg.PerfectStores = cell.Perfect
		s, err := c.run(sim.Spec{Workload: byName[cell.Workload], Uarch: cfg, Insts: c.Insts, Warm: c.Warm})
		if err != nil {
			return err
		}
		cell.EPI = s.EPI()
		return nil
	})
	return cells, err
}

// Fig8Cell is one bar segment of Figure 8: Hardware Scout modes under
// both consistency models.
type Fig8Cell struct {
	Workload string
	Model    consistency.Model
	HWS      uarch.HWSMode
	Perfect  bool
	EPI      float64
}

// Figure8 evaluates HWS0/1/2 (and no scout) under PC and WC.
func Figure8(c Config) ([]Fig8Cell, error) {
	c = c.norm()
	var cells []Fig8Cell
	for _, w := range c.Workloads {
		for _, m := range []consistency.Model{consistency.PC, consistency.WC} {
			for _, h := range []uarch.HWSMode{uarch.NoHWS, uarch.HWS0, uarch.HWS1, uarch.HWS2} {
				cells = append(cells,
					Fig8Cell{Workload: w.Name, Model: m, HWS: h},
					Fig8Cell{Workload: w.Name, Model: m, HWS: h, Perfect: true})
			}
		}
	}
	byName := workloadIndex(c.Workloads)
	err := parMap(c.ctx(), len(cells), c.Parallelism, func(i int) error {
		cell := &cells[i]
		cfg := uarch.Default()
		cfg.Model = cell.Model
		cfg.HWS = cell.HWS
		cfg.PerfectStores = cell.Perfect
		s, err := c.run(sim.Spec{Workload: byName[cell.Workload], Uarch: cfg, Insts: c.Insts, Warm: c.Warm})
		if err != nil {
			return err
		}
		cell.EPI = s.EPI()
		return nil
	})
	return cells, err
}

func workloadIndex(ws []workload.Params) map[string]workload.Params {
	m := make(map[string]workload.Params, len(ws))
	for _, w := range ws {
		m[w.Name] = w
	}
	return m
}
