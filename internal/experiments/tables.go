package experiments

import (
	"storemlp/internal/cache"
	"storemlp/internal/isa"
	"storemlp/internal/onchip"
	"storemlp/internal/sim"
	"storemlp/internal/trace"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

// Table1Row reproduces one column of the paper's Table 1: store
// frequency and L2 store/load/instruction miss rates per 100
// instructions for a 2 MB 4-way 64 B-line L2.
type Table1Row struct {
	Workload  string
	StoreFreq float64
	StoreMiss float64
	LoadMiss  float64
	InstMiss  float64
}

// Table1 replays each workload through the default cache hierarchy and
// reports the Table 1 statistics.
func Table1(c Config) ([]Table1Row, error) {
	c = c.norm()
	rows := make([]Table1Row, len(c.Workloads))
	err := parMap(c.ctx(), len(c.Workloads), c.Parallelism, func(i int) error {
		w := c.Workloads[i]
		if err := w.Validate(); err != nil {
			return err
		}
		h := cache.NewHierarchy(cache.DefaultConfig())
		g := workload.NewGenerator(w)
		replay := func(n int64) (stats cache.HierarchyStats, insts, stores int64) {
			src := trace.Limit(g, n)
			base := h.Stats
			for {
				in, ok := src.Next()
				if !ok {
					break
				}
				insts++
				h.Fetch(in.PC)
				shared := in.Flags.Has(isa.FlagShared)
				if in.Op.IsLoad() {
					h.Load(in.Addr, shared)
				}
				if in.Op.IsStore() {
					h.Store(in.Addr, shared)
					stores++
				}
			}
			s := h.Stats
			return cache.HierarchyStats{
				StoreOffChip: s.StoreOffChip - base.StoreOffChip,
				LoadOffChip:  s.LoadOffChip - base.LoadOffChip,
				FetchOffChip: s.FetchOffChip - base.FetchOffChip,
			}, insts, stores
		}
		replay(c.Warm)
		d, insts, stores := replay(c.Insts)
		per100 := func(n int64) float64 { return 100 * float64(n) / float64(insts) }
		rows[i] = Table1Row{
			Workload:  w.Name,
			StoreFreq: per100(stores),
			StoreMiss: per100(d.StoreOffChip),
			LoadMiss:  per100(d.LoadOffChip),
			InstMiss:  per100(d.FetchOffChip),
		}
		return nil
	})
	return rows, err
}

// Table2Row is one column of Table 2: the fraction of missing stores
// fully overlapped with computation under the default configuration and
// a 500-cycle memory latency.
type Table2Row struct {
	Workload   string
	Overlapped float64
}

// Table2 runs the default configuration per workload.
func Table2(c Config) ([]Table2Row, error) {
	c = c.norm()
	rows := make([]Table2Row, len(c.Workloads))
	err := parMap(c.ctx(), len(c.Workloads), c.Parallelism, func(i int) error {
		w := c.Workloads[i]
		s, err := c.run(sim.Spec{Workload: w, Uarch: uarch.Default(), Insts: c.Insts, Warm: c.Warm})
		if err != nil {
			return err
		}
		rows[i] = Table2Row{Workload: w.Name, Overlapped: s.OverlappedStoreFraction()}
		return nil
	})
	return rows, err
}

// Table3Row is one column of Table 3: CPIon-chip for the default
// configuration (L1 4 cycles, L2 15 cycles).
type Table3Row struct {
	Workload  string
	CPIOnChip float64
}

// Table3 evaluates the analytical on-chip CPI model per workload.
func Table3(c Config) ([]Table3Row, error) {
	c = c.norm()
	rows := make([]Table3Row, len(c.Workloads))
	model := onchip.DefaultModel()
	err := parMap(c.ctx(), len(c.Workloads), c.Parallelism, func(i int) error {
		w := c.Workloads[i]
		in, err := onchip.Measure(w, c.Warm, c.Insts)
		if err != nil {
			return err
		}
		rows[i] = Table3Row{Workload: w.Name, CPIOnChip: model.CPI(in)}
		return nil
	})
	return rows, err
}
