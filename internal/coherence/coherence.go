// Package coherence models the cross-chip coherence traffic seen by the
// observed node in a multi-node system.
//
// The paper simulates 2-node and 4-node multiprocessors and "accurately
// model[s] the cross-chip coherence traffic" (§4.2). We reproduce the
// part of that traffic that matters to the store MLP study: remote
// nodes' accesses to shared lines generate snoops at the observed node,
// which demote or invalidate L2 lines and invalidate SMAC ownership
// bits, limiting SMAC effectiveness (Figure 6).
//
// Remote nodes run the same workload, so their snoop stream is modelled
// as a rate process over the workload's shared-region map: for every
// thousand instructions the local core executes, each remote node
// contributes a calibrated number of conflicting accesses to shared
// lines, split between stores (request-to-own snoops) and loads (shared
// snoops).
package coherence

import (
	"fmt"
	"math/rand"
)

// Region is a contiguous block of shared physical address space.
type Region struct {
	Base uint64
	Size uint64
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// SnoopKind distinguishes the two remote request types.
type SnoopKind uint8

const (
	// SnoopRTO is a remote request-to-own (remote store): the local copy
	// must be invalidated.
	SnoopRTO SnoopKind = iota
	// SnoopRead is a remote read: a locally owned copy is demoted to
	// Shared.
	SnoopRead
)

func (k SnoopKind) String() string {
	if k == SnoopRTO {
		return "rto"
	}
	return "read"
}

// Snoop is one remote coherence request arriving at the observed node.
type Snoop struct {
	Addr uint64
	Kind SnoopKind
}

// Handler consumes snoops (the epoch engine wires this to the cache
// hierarchy and the SMAC).
type Handler func(Snoop)

// TrafficSpec calibrates the remote traffic for one workload.
type TrafficSpec struct {
	// Regions is the shared address space contended across nodes.
	Regions []Region
	// EventsPerKiloInst is the number of conflicting remote accesses per
	// 1000 locally executed instructions, per remote node.
	EventsPerKiloInst float64
	// StoreFraction is the fraction of remote events that are stores
	// (request-to-own) rather than reads.
	StoreFraction float64
	// LineBytes aligns snoop addresses to cache lines.
	LineBytes int
}

// Validate checks the spec.
func (s TrafficSpec) Validate() error {
	if s.EventsPerKiloInst < 0 {
		return fmt.Errorf("coherence: negative event rate %v", s.EventsPerKiloInst)
	}
	if s.StoreFraction < 0 || s.StoreFraction > 1 {
		return fmt.Errorf("coherence: store fraction %v outside [0,1]", s.StoreFraction)
	}
	if s.EventsPerKiloInst > 0 && len(s.Regions) == 0 {
		return fmt.Errorf("coherence: traffic requested but no shared regions")
	}
	if s.LineBytes <= 0 || s.LineBytes&(s.LineBytes-1) != 0 {
		return fmt.Errorf("coherence: line size %d not a power of two", s.LineBytes)
	}
	for _, r := range s.Regions {
		if r.Size == 0 {
			return fmt.Errorf("coherence: empty region at %#x", r.Base)
		}
	}
	return nil
}

// Traffic generates the snoop stream from remote nodes. It is advanced
// in local-instruction time by the epoch engine.
type Traffic struct {
	spec    TrafficSpec //storemlp:keep (calibration, fixed at construction)
	nodes   int         //storemlp:keep
	seed    int64       //storemlp:keep (Reset replays the same seed)
	rng     *rand.Rand
	handler Handler //storemlp:keep (re-wired by the engine, not per run)
	acc     float64
	perInst float64 //storemlp:keep events accrued per instruction; 0 disables
	lineMsk uint64  //storemlp:keep

	// Delivered counts snoops emitted so far.
	Delivered int64
}

// NewTraffic builds a traffic source for a system with the given total
// node count (1 disables traffic entirely). handler may be nil and set
// later with SetHandler.
func NewTraffic(spec TrafficSpec, nodes int, seed int64, handler Handler) (*Traffic, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if nodes < 1 {
		return nil, fmt.Errorf("coherence: node count %d < 1", nodes)
	}
	t := &Traffic{
		spec:    spec,
		nodes:   nodes,
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
		handler: handler,
		lineMsk: ^uint64(spec.LineBytes - 1),
	}
	if nodes > 1 && spec.EventsPerKiloInst > 0 {
		t.perInst = spec.EventsPerKiloInst * float64(nodes-1) / 1000
	}
	return t, nil
}

// SetHandler installs the snoop consumer.
func (t *Traffic) SetHandler(h Handler) { t.handler = h }

// Reset rewinds the traffic source to its as-constructed state: the
// same seed replays the identical snoop stream.
func (t *Traffic) Reset() {
	t.rng = rand.New(rand.NewSource(t.seed))
	t.acc = 0
	t.Delivered = 0
}

// Nodes returns the total node count.
func (t *Traffic) Nodes() int { return t.nodes }

// Advance accounts for n locally executed instructions and delivers any
// remote snoops that fall due.
//
//storemlp:noalloc
func (t *Traffic) Advance(n int64) {
	if t == nil || t.perInst <= 0 {
		return
	}
	t.acc += float64(n) * t.perInst
	if t.acc >= 1 {
		t.drain()
	}
}

// AdvanceOne is Advance(1) without the scaling multiply: the epoch
// engine's per-instruction call, small enough to inline into the step
// loop so the common no-snoop-due case costs an add and a compare.
//
//storemlp:noalloc
//storemlp:inline
func (t *Traffic) AdvanceOne() {
	if t == nil || t.perInst <= 0 {
		return
	}
	t.acc += t.perInst
	if t.acc >= 1 {
		t.drain()
	}
}

// Skip advances the traffic clock by n instructions while discarding
// the snoops that fall due, leaving the source in exactly the state n
// AdvanceOne calls would have produced: same rng position, same
// fractional accumulator, same Delivered count. The loop repeats the
// per-instruction accumulation rather than adding n*perInst in one
// step — the one-shot product rounds differently in float64 and would
// desynchronize the snoop-per-instruction alignment. Segment engines
// of a parallel run use this to fast-forward past their stream prefix
// so the measured snoop sequence matches the serial run bit-exactly.
func (t *Traffic) Skip(n int64) {
	if t == nil || t.perInst <= 0 || n <= 0 {
		return
	}
	h := t.handler
	t.handler = nil
	for i := int64(0); i < n; i++ {
		t.acc += t.perInst
		if t.acc >= 1 {
			t.drain()
		}
	}
	t.handler = h
}

// drain delivers every due snoop. Kept out of Advance's inlined body:
// snoops are rare (a handful per kilo-instruction), so Advance's
// per-instruction cost must stay a multiply-add and a compare.
//
//go:noinline
func (t *Traffic) drain() {
	for t.acc >= 1 {
		t.acc--
		t.emit()
	}
}

func (t *Traffic) emit() {
	r := t.spec.Regions[t.rng.Intn(len(t.spec.Regions))]
	addr := (r.Base + uint64(t.rng.Int63n(int64(r.Size)))) & t.lineMsk
	kind := SnoopRead
	if t.rng.Float64() < t.spec.StoreFraction {
		kind = SnoopRTO
	}
	t.Delivered++
	if t.handler != nil {
		t.handler(Snoop{Addr: addr, Kind: kind})
	}
}
