package coherence

import (
	"math"
	"testing"
)

func spec() TrafficSpec {
	return TrafficSpec{
		Regions:           []Region{{Base: 0x100000, Size: 1 << 20}},
		EventsPerKiloInst: 2.0,
		StoreFraction:     0.75,
		LineBytes:         64,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := spec().Validate(); err != nil {
		t.Fatalf("good spec invalid: %v", err)
	}
	bad := []TrafficSpec{
		{EventsPerKiloInst: -1, LineBytes: 64},
		{EventsPerKiloInst: 1, StoreFraction: 2, LineBytes: 64, Regions: []Region{{0, 1}}},
		{EventsPerKiloInst: 1, StoreFraction: 0.5, LineBytes: 64}, // no regions
		{EventsPerKiloInst: 1, StoreFraction: 0.5, LineBytes: 63, Regions: []Region{{0, 1}}},
		{EventsPerKiloInst: 1, StoreFraction: 0.5, LineBytes: 64, Regions: []Region{{0, 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 0x1000, Size: 0x100}
	for addr, want := range map[uint64]bool{
		0x0fff: false, 0x1000: true, 0x10ff: true, 0x1100: false,
	} {
		if got := r.Contains(addr); got != want {
			t.Errorf("Contains(%#x) = %v, want %v", addr, got, want)
		}
	}
}

func TestTrafficRate(t *testing.T) {
	var got []Snoop
	tr, err := NewTraffic(spec(), 2, 1, func(s Snoop) { got = append(got, s) })
	if err != nil {
		t.Fatal(err)
	}
	tr.Advance(100_000) // 2/kiloinst * 1 remote node => ~200 events
	if tr.Delivered != 200 {
		t.Errorf("Delivered = %d, want 200", tr.Delivered)
	}
	if int64(len(got)) != tr.Delivered {
		t.Errorf("handler saw %d, Delivered %d", len(got), tr.Delivered)
	}
	// 4-node: 3 remote nodes => 3x traffic.
	tr4, err := NewTraffic(spec(), 4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr4.Advance(100_000)
	if tr4.Delivered != 600 {
		t.Errorf("4-node Delivered = %d, want 600", tr4.Delivered)
	}
}

func TestTrafficSingleNodeSilent(t *testing.T) {
	tr, err := NewTraffic(spec(), 1, 1, func(Snoop) { t.Error("single node must not snoop") })
	if err != nil {
		t.Fatal(err)
	}
	tr.Advance(1_000_000)
	if tr.Delivered != 0 {
		t.Errorf("Delivered = %d", tr.Delivered)
	}
}

func TestTrafficAddressesAndMix(t *testing.T) {
	s := spec()
	var rto, rd int
	tr, err := NewTraffic(s, 2, 42, func(sn Snoop) {
		if !s.Regions[0].Contains(sn.Addr) {
			t.Fatalf("snoop addr %#x outside region", sn.Addr)
		}
		if sn.Addr%64 != 0 {
			t.Fatalf("snoop addr %#x not line aligned", sn.Addr)
		}
		if sn.Kind == SnoopRTO {
			rto++
		} else {
			rd++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Advance(500_000) // 1000 events
	frac := float64(rto) / float64(rto+rd)
	if math.Abs(frac-0.75) > 0.05 {
		t.Errorf("store fraction = %v, want ~0.75", frac)
	}
}

func TestTrafficDeterminism(t *testing.T) {
	collect := func() []Snoop {
		var got []Snoop
		tr, _ := NewTraffic(spec(), 2, 7, func(s Snoop) { got = append(got, s) })
		tr.Advance(10_000)
		return got
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNilTrafficAdvance(t *testing.T) {
	var tr *Traffic
	tr.Advance(1000) // must not panic
}

func TestNewTrafficErrors(t *testing.T) {
	if _, err := NewTraffic(spec(), 0, 1, nil); err == nil {
		t.Error("nodes=0 should error")
	}
	bad := spec()
	bad.StoreFraction = -1
	if _, err := NewTraffic(bad, 2, 1, nil); err == nil {
		t.Error("bad spec should error")
	}
}

func TestSnoopKindString(t *testing.T) {
	if SnoopRTO.String() != "rto" || SnoopRead.String() != "read" {
		t.Error("SnoopKind strings wrong")
	}
}

func TestSetHandler(t *testing.T) {
	tr, err := NewTraffic(spec(), 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Advance(1000) // no handler: counted but dropped
	if tr.Delivered != 2 {
		t.Fatalf("Delivered = %d", tr.Delivered)
	}
	n := 0
	tr.SetHandler(func(Snoop) { n++ })
	tr.Advance(1000)
	if n != 2 {
		t.Errorf("handler calls = %d, want 2", n)
	}
	if tr.Nodes() != 2 {
		t.Errorf("Nodes = %d", tr.Nodes())
	}
}
